#include "kv/fault_injection_env.h"

#include <algorithm>

namespace trass {
namespace kv {

namespace {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpenWrite:
      return "open-write";
    case FaultOp::kOpenRead:
      return "open-read";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kAppend:
      return "append";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kRename:
      return "rename";
  }
  return "unknown";
}

Status InactiveError(const std::string& path) {
  return Status::IoError(path + ": filesystem inactive (simulated crash)");
}

}  // namespace

/// WritableFile wrapper reporting appends/syncs back to the env so crash
/// simulation knows each file's durable prefix.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string fname,
                             std::unique_ptr<WritableFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Append(const Slice& data) override {
    if (!env_->writes_allowed()) return InactiveError(fname_);
    size_t accept = data.size();
    Status s = env_->PreAppend(fname_, data.size(), &accept);
    if (s.ok()) {
      s = target_->Append(data);
      if (s.ok()) env_->OnAppend(fname_, data.size());
      return s;
    }
    // Failed append: land the prefix the "disk" still took (short write
    // / budget exhaustion), so the file carries the realistic torn tail
    // an ENOSPC leaves behind for recovery to deal with.
    if (accept > 0 && target_->Append(Slice(data.data(), accept)).ok()) {
      env_->OnAppend(fname_, accept);
    }
    return s;
  }

  Status Flush() override {
    if (!env_->writes_allowed()) return InactiveError(fname_);
    return target_->Flush();
  }

  Status Sync() override {
    if (!env_->writes_allowed()) return InactiveError(fname_);
    Status s = env_->CheckFault(FaultOp::kSync, fname_);
    if (!s.ok()) return s;
    s = target_->Sync();
    if (s.ok()) env_->OnSync(fname_);
    return s;
  }

  Status Close() override { return target_->Close(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> target_;
};

namespace {

class FaultInjectionRandomAccessFile final : public RandomAccessFile {
 public:
  FaultInjectionRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                                 std::unique_ptr<RandomAccessFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->CheckFault(FaultOp::kRead, fname_);
    if (!s.ok()) return s;
    return target_->Read(offset, n, result, scratch);
  }

  uint64_t Size() const override { return target_->Size(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> target_;
};

class FaultInjectionSequentialFile final : public SequentialFile {
 public:
  FaultInjectionSequentialFile(FaultInjectionEnv* env, std::string fname,
                               std::unique_ptr<SequentialFile> target)
      : env_(env), fname_(std::move(fname)), target_(std::move(target)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->CheckFault(FaultOp::kRead, fname_);
    if (!s.ok()) return s;
    return target_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return target_->Skip(n); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> target_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* target)
    : target_(target), rng_(0xfa17) {}

void FaultInjectionEnv::InjectFault(const FaultPoint& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(fault);
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
}

uint64_t FaultInjectionEnv::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_fired_;
}

void FaultInjectionEnv::SetFilesystemActive(bool active) {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = active;
}

bool FaultInjectionEnv::writes_allowed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

Status FaultInjectionEnv::CheckFault(FaultOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckFaultLocked(op, path);
}

Status FaultInjectionEnv::CheckFaultLocked(FaultOp op,
                                           const std::string& path) {
  for (size_t i = 0; i < faults_.size(); ++i) {
    FaultPoint& fault = faults_[i];
    if (fault.op != op) continue;
    if (!fault.path_substring.empty() &&
        path.find(fault.path_substring) == std::string::npos) {
      continue;
    }
    if (fault.probability > 0.0) {
      if (!rng_.Bernoulli(fault.probability)) return Status::OK();
    } else if (fault.countdown > 0) {
      --fault.countdown;
      return Status::OK();
    }
    ++faults_fired_;
    const FaultKind kind = fault.kind;
    const std::string msg = path + ": injected " +
                            std::string(FaultOpName(op)) + " fault";
    if (!fault.permanent) faults_.erase(faults_.begin() + i);
    if (kind == FaultKind::kIoError) return Status::IoError(msg);
    return Status::NoSpace(msg);
  }
  return Status::OK();
}

Status FaultInjectionEnv::PreAppend(const std::string& path,
                                    size_t data_size, size_t* accept) {
  std::lock_guard<std::mutex> lock(mu_);
  *accept = data_size;
  // Armed faults first: they model the device failing, independent of
  // how much budget the accountant thinks is left.
  for (size_t i = 0; i < faults_.size(); ++i) {
    FaultPoint& fault = faults_[i];
    if (fault.op != FaultOp::kAppend) continue;
    if (!fault.path_substring.empty() &&
        path.find(fault.path_substring) == std::string::npos) {
      continue;
    }
    if (fault.probability > 0.0) {
      if (!rng_.Bernoulli(fault.probability)) break;
    } else if (fault.countdown > 0) {
      --fault.countdown;
      break;
    }
    ++faults_fired_;
    const FaultKind kind = fault.kind;
    if (!fault.permanent) faults_.erase(faults_.begin() + i);
    const std::string msg = path + ": injected append fault";
    switch (kind) {
      case FaultKind::kIoError:
        *accept = 0;
        return Status::IoError(msg);
      case FaultKind::kNoSpace:
        *accept = 0;
        return Status::NoSpace(msg);
      case FaultKind::kShortWrite:
        *accept = data_size / 2;
        return Status::NoSpace(msg + " (short write)");
    }
  }
  if (space_budget_ != kUnlimitedBudget) {
    const uint64_t remaining =
        space_budget_ > space_used_ ? space_budget_ - space_used_ : 0;
    if (data_size > remaining) {
      *accept = static_cast<size_t>(remaining);
      return Status::NoSpace(path + ": disk budget exhausted (" +
                             std::to_string(remaining) + " of " +
                             std::to_string(data_size) + " bytes fit)");
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::SetDiskSpaceBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  space_budget_ = bytes;
}

uint64_t FaultInjectionEnv::disk_space_used() const {
  std::lock_guard<std::mutex> lock(mu_);
  return space_used_;
}

void FaultInjectionEnv::ForgetFileLocked(const std::string& fname) {
  auto it = files_.find(fname);
  if (it == files_.end()) return;
  space_used_ -= std::min(space_used_, it->second.pos);
  files_.erase(it);
}

void FaultInjectionEnv::OnAppend(const std::string& fname, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname].pos += bytes;
  space_used_ += bytes;
}

void FaultInjectionEnv::OnSync(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[fname];
  state.synced_pos = state.pos;
  state.ever_synced = true;
}

uint64_t FaultInjectionEnv::SyncedBytes(const std::string& fname) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  return it == files_.end() ? 0 : it->second.synced_pos;
}

void FaultInjectionEnv::ResetState() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  space_used_ = 0;
}

Status FaultInjectionEnv::DropUnsyncedData() {
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files = files_;
  }
  for (const auto& [fname, state] : files) {
    if (!target_->FileExists(fname)) continue;
    if (!state.ever_synced) {
      // Never synced: the file's directory entry is not durable.
      Status s = target_->RemoveFile(fname);
      if (!s.ok()) return s;
      std::lock_guard<std::mutex> lock(mu_);
      ForgetFileLocked(fname);
      continue;
    }
    if (state.synced_pos >= state.pos) continue;  // fully durable
    std::string contents;
    Status s = target_->ReadFileToString(fname, &contents);
    if (!s.ok()) return s;
    if (contents.size() > state.synced_pos) {
      contents.resize(state.synced_pos);
    }
    s = target_->WriteStringToFile(Slice(contents), fname, /*sync=*/true);
    if (!s.ok()) return s;
    std::lock_guard<std::mutex> lock(mu_);
    FileState& tracked = files_[fname];
    if (tracked.pos > state.synced_pos) {
      space_used_ -= std::min(space_used_, tracked.pos - state.synced_pos);
    }
    tracked.pos = state.synced_pos;
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (!writes_allowed()) return InactiveError(fname);
  Status s = CheckFault(FaultOp::kOpenWrite, fname);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> file;
  s = target_->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  {
    // Creation truncates, so tracking (and charged bytes) restart from
    // zero.
    std::lock_guard<std::mutex> lock(mu_);
    ForgetFileLocked(fname);
    files_[fname] = FileState{};
  }
  *result = std::make_unique<FaultInjectionWritableFile>(this, fname,
                                                         std::move(file));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  Status s = CheckFault(FaultOp::kOpenRead, fname);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> file;
  s = target_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultInjectionRandomAccessFile>(this, fname,
                                                             std::move(file));
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  Status s = CheckFault(FaultOp::kOpenRead, fname);
  if (!s.ok()) return s;
  std::unique_ptr<SequentialFile> file;
  s = target_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultInjectionSequentialFile>(this, fname,
                                                           std::move(file));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return target_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return target_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  if (!writes_allowed()) return InactiveError(fname);
  Status s = target_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ForgetFileLocked(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDir(const std::string& dirname) {
  if (!writes_allowed()) return InactiveError(dirname);
  return target_->CreateDir(dirname);
}

Status FaultInjectionEnv::RemoveDirRecursively(const std::string& dirname) {
  if (!writes_allowed()) return InactiveError(dirname);
  Status s = target_->RemoveDirRecursively(dirname);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string prefix = dirname + "/";
    for (auto it = files_.begin(); it != files_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        space_used_ -= std::min(space_used_, it->second.pos);
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  if (!writes_allowed()) return InactiveError(src);
  Status s = CheckFault(FaultOp::kRename, src);
  if (!s.ok()) return s;
  s = target_->RenameFile(src, target);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      const FileState moved = it->second;
      files_.erase(it);
      // An overwritten rename target gives its bytes back to the disk.
      ForgetFileLocked(target);
      files_[target] = moved;
    } else {
      ForgetFileLocked(target);
    }
  }
  return s;
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return target_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::ReadFileToString(const std::string& fname,
                                           std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static constexpr size_t kBufSize = 1 << 16;
  std::string scratch(kBufSize, '\0');
  for (;;) {
    Slice fragment;
    s = file->Read(kBufSize, &fragment, scratch.data());
    if (!s.ok()) return s;
    if (fragment.empty()) break;
    data->append(fragment.data(), fragment.size());
  }
  return Status::OK();
}

Status FaultInjectionEnv::GetFreeDiskSpace(const std::string& path,
                                           uint64_t* bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (space_budget_ != kUnlimitedBudget) {
      *bytes = space_budget_ > space_used_ ? space_budget_ - space_used_ : 0;
      return Status::OK();
    }
  }
  return target_->GetFreeDiskSpace(path, bytes);
}

Status FaultInjectionEnv::WriteStringToFile(const Slice& data,
                                            const std::string& fname,
                                            bool sync) {
  std::unique_ptr<WritableFile> file;
  Status s = NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok() && sync) s = file->Sync();
  if (s.ok()) s = file->Close();
  return s;
}

}  // namespace kv
}  // namespace trass
