// Appends CRC-framed records to a write-ahead log file.

#ifndef TRASS_KV_LOG_WRITER_H_
#define TRASS_KV_LOG_WRITER_H_

#include <cstdint>

#include "kv/env.h"
#include "kv/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {
namespace log {

class Writer {
 public:
  /// `dest` must remain open while this Writer is in use; Writer does not
  /// take ownership.
  explicit Writer(WritableFile* dest) : dest_(dest) {}

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& record);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  int block_offset_ = 0;
};

}  // namespace log
}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_LOG_WRITER_H_
