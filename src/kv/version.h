// The LSM file layout: which SSTables live at which level, plus manifest
// persistence and compaction picking.
//
// Level 0 files may overlap and are searched newest-first; levels >= 1
// hold sorted, disjoint key ranges. The manifest is a full snapshot of the
// layout rewritten after every flush/compaction (file counts here are
// modest, so snapshot-style manifests are simpler and equally correct).

#ifndef TRASS_KV_VERSION_H_
#define TRASS_KV_VERSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kv/dbformat.h"
#include "kv/env.h"
#include "util/status.h"

namespace trass {
namespace kv {

constexpr int kNumLevels = 7;

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // internal key
  std::string largest;   // internal key
};

/// A snapshot of the file layout. Copyable: DB iterators copy the current
/// version so compactions can install new ones concurrently.
struct Version {
  std::vector<FileMetaData> files[kNumLevels];

  /// Files at `level` whose key range intersects [begin, end] (user keys;
  /// empty slices mean unbounded).
  std::vector<FileMetaData> Overlapping(int level, const Slice& begin,
                                        const Slice& end) const;

  uint64_t LevelBytes(int level) const;
  int NumFiles(int level) const;
};

/// Owns the current Version plus the counters that survive restarts.
class VersionSet {
 public:
  VersionSet(std::string dbname, Env* env);

  /// Loads CURRENT/manifest state; `*found_manifest` reports whether an
  /// existing database was recovered.
  Status Recover(bool* found_manifest);

  /// Persists the layout + counters to a new manifest and points CURRENT
  /// at it.
  Status WriteSnapshot();

  const Version& current() const { return current_; }
  Version* mutable_current() { return &current_; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  uint64_t next_file_number() const { return next_file_number_; }
  /// Lowers next_file_number_ during recovery reconciliation.
  void BumpFileNumber(uint64_t floor) {
    if (next_file_number_ <= floor) next_file_number_ = floor + 1;
  }

  SequenceNumber last_sequence() const { return last_sequence_; }
  void set_last_sequence(SequenceNumber seq) { last_sequence_ = seq; }

  uint64_t log_number() const { return log_number_; }
  void set_log_number(uint64_t n) { log_number_ = n; }

  /// Returns the level that should be compacted next, or -1 if none.
  /// `l0_trigger` / `level_base_bytes` come from Options.
  int PickCompactionLevel(int l0_trigger, uint64_t level_base_bytes) const;

 private:
  const std::string dbname_;
  Env* const env_;
  Version current_;
  uint64_t next_file_number_ = 1;
  SequenceNumber last_sequence_ = 0;
  uint64_t log_number_ = 0;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_VERSION_H_
