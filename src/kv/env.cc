#include "kv/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace trass {
namespace kv {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IoError(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t size)
      : fname_(std::move(fname)), fd_(fd), size_(size) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    for (;;) {
      ssize_t r = ::read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size));
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      result->emplace_back(entry->d_name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDirRecursively(const std::string& dirname) override {
    std::vector<std::string> children;
    if (!FileExists(dirname)) return Status::OK();
    Status s = GetChildren(dirname, &children);
    if (!s.ok()) return s;
    for (const auto& child : children) {
      const std::string path = dirname + "/" + child;
      struct stat st;
      if (::lstat(path.c_str(), &st) != 0) return PosixError(path, errno);
      if (S_ISDIR(st.st_mode)) {
        s = RemoveDirRecursively(path);
      } else {
        s = RemoveFile(path);
      }
      if (!s.ok()) return s;
    }
    if (::rmdir(dirname.c_str()) != 0) return PosixError(dirname, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& fname,
                          std::string* data) override {
    data->clear();
    std::unique_ptr<SequentialFile> file;
    Status s = NewSequentialFile(fname, &file);
    if (!s.ok()) return s;
    static constexpr size_t kBufSize = 1 << 16;
    std::string scratch(kBufSize, '\0');
    for (;;) {
      Slice fragment;
      s = file->Read(kBufSize, &fragment, scratch.data());
      if (!s.ok()) return s;
      if (fragment.empty()) break;
      data->append(fragment.data(), fragment.size());
    }
    return Status::OK();
  }

  Status WriteStringToFile(const Slice& data, const std::string& fname,
                           bool sync) override {
    std::unique_ptr<WritableFile> file;
    Status s = NewWritableFile(fname, &file);
    if (!s.ok()) return s;
    s = file->Append(data);
    if (s.ok() && sync) s = file->Sync();
    if (s.ok()) s = file->Close();
    return s;
  }
};

}  // namespace

Status Env::GetFreeDiskSpace(const std::string& path, uint64_t* bytes) {
  struct statvfs vfs;
  if (::statvfs(path.c_str(), &vfs) != 0) return PosixError(path, errno);
  // f_bavail: blocks available to unprivileged callers — what a write
  // can actually use, unlike f_bfree which includes the root reserve.
  *bytes = static_cast<uint64_t>(vfs.f_bavail) *
           static_cast<uint64_t>(vfs.f_frsize);
  return Status::OK();
}

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace kv
}  // namespace trass
