// Embedded LSM key-value store: WAL + memtable + leveled SSTables.
//
// This is the storage substrate standing in for HBase in the TraSS
// reproduction: it provides ordered row keys, range scans, durability via
// a write-ahead log, and I/O accounting. Flushes and compactions run
// synchronously on the writing thread, which keeps benchmark numbers
// deterministic on a single machine.

#ifndef TRASS_KV_DB_H_
#define TRASS_KV_DB_H_

#include <memory>
#include <mutex>
#include <string>

#include "kv/cache.h"
#include "kv/dbformat.h"
#include "kv/env.h"
#include "kv/iterator.h"
#include "kv/log_writer.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/stats.h"
#include "kv/table_cache.h"
#include "kv/version.h"
#include "kv/write_batch.h"

namespace trass {
namespace kv {

class DB {
 public:
  /// Opens (creating if allowed) the database at directory `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* db);

  /// Best-effort offline repair of the database at `name` (the DB must
  /// not be open). Rebuilds a fresh manifest from the SSTables that
  /// still pass a full checksum walk: unreadable/corrupt tables are
  /// quarantined (renamed to `<file>.bad`), survivors are installed at
  /// level 0, and the log number is reset so every surviving WAL is
  /// replayed on the next Open. Use when Open fails with a corrupt or
  /// missing manifest/CURRENT; what it cannot salvage is data whose only
  /// copy lived in a corrupt table or an unsynced WAL tail.
  static Status Repair(const Options& options, const std::string& name);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Write(const WriteOptions& options, WriteBatch* batch);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Forward iterator over live user keys, ordered bytewise. Reflects a
  /// point-in-time snapshot taken at creation.
  Iterator* NewIterator(const ReadOptions& options);

  /// Forces the memtable into an L0 SSTable (and runs due compactions).
  Status Flush();

  /// Compacts everything down to the last non-empty level.
  Status CompactRange();

  /// Scrub: re-reads every SSTable referenced by the current version
  /// (footer, filter, index, and all data blocks) straight from disk,
  /// verifying block checksums, and re-parses the manifest. Returns the
  /// first corruption found, with the offending file in the message.
  Status VerifyIntegrity();

  const IoStats& io_stats() const { return stats_; }
  IoStats* mutable_io_stats() { return &stats_; }

  int NumFilesAtLevel(int level) const;
  uint64_t TotalTableBytes() const;

 private:
  DB(const Options& options, std::string name);

  Status RecoverLogs();
  Status SwitchToNewLog();
  Status FlushMemTableLocked();            // requires mu_
  Status MaybeCompactLocked();             // requires mu_
  Status CompactLevelLocked(int level);    // requires mu_
  Status WriteLevel0TableLocked(MemTable* mem);
  void RemoveObsoleteFilesLocked();

  Options options_;
  std::string dbname_;
  Env* env_;

  mutable std::mutex mu_;
  // shared_ptr: flush replaces the memtable while escaped iterators
  // (NewIterator snapshots) may still be reading the old one; each
  // iterator co-owns the memtable it was created against.
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<log::Writer> log_;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<VersionSet> versions_;

  BlockCache block_cache_;
  IoStats stats_;
  std::unique_ptr<TableCache> table_cache_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_DB_H_
