// Embedded LSM key-value store: WAL + memtable + leveled SSTables.
//
// This is the storage substrate standing in for HBase in the TraSS
// reproduction: it provides ordered row keys, range scans, durability via
// a write-ahead log, and I/O accounting. Flushes and compactions run
// synchronously on the writing thread, which keeps benchmark numbers
// deterministic on a single machine.
//
// Failure semantics (RocksDB-style background-error model): any failed
// WAL append/sync, flush, or compaction sets a sticky background error
// and the DB degrades to read-only — Get/iterators/VerifyIntegrity keep
// working off the installed version, every write is rejected with the
// sticky status. Resume() re-establishes writability: it opens a fresh
// WAL (the old one may carry a torn record), persists the memtable so no
// acked row depends on the abandoned log, rewrites and re-verifies the
// manifest, and only then clears the error. Low-space watermarks
// (Options::soft/hard_space_watermark_bytes) stall and then shed writes
// *before* an actual ENOSPC can wedge the store.

#ifndef TRASS_KV_DB_H_
#define TRASS_KV_DB_H_

#include <memory>
#include <mutex>
#include <string>

#include "kv/cache.h"
#include "kv/dbformat.h"
#include "kv/env.h"
#include "kv/iterator.h"
#include "kv/log_writer.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/stats.h"
#include "kv/table_cache.h"
#include "kv/version.h"
#include "kv/write_batch.h"

namespace trass {
namespace kv {

class DB {
 public:
  /// Opens (creating if allowed) the database at directory `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* db);

  /// Best-effort offline repair of the database at `name` (the DB must
  /// not be open). Rebuilds a fresh manifest from the SSTables that
  /// still pass a full checksum walk: unreadable/corrupt tables are
  /// quarantined (renamed to `<file>.bad`), survivors are installed at
  /// level 0, and the log number is reset so every surviving WAL is
  /// replayed on the next Open. Use when Open fails with a corrupt or
  /// missing manifest/CURRENT; what it cannot salvage is data whose only
  /// copy lived in a corrupt table or an unsynced WAL tail.
  static Status Repair(const Options& options, const std::string& name);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Write(const WriteOptions& options, WriteBatch* batch);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Forward iterator over live user keys, ordered bytewise. Reflects a
  /// point-in-time snapshot taken at creation.
  Iterator* NewIterator(const ReadOptions& options);

  /// Forces the memtable into an L0 SSTable (and runs due compactions).
  Status Flush();

  /// Compacts everything down to the last non-empty level.
  Status CompactRange();

  /// Scrub: re-reads every SSTable referenced by the current version
  /// (footer, filter, index, and all data blocks) straight from disk,
  /// verifying block checksums, and re-parses the manifest. Returns the
  /// first corruption found, with the offending file in the message.
  Status VerifyIntegrity();

  /// The sticky background error (OK when healthy). Set by any failed
  /// WAL append/sync, flush, or compaction; while set, the DB is
  /// read-only and every write fails fast with this status.
  Status background_error() const;
  /// True while a background error holds the DB in read-only mode.
  bool read_only() const;
  /// Attempts to restore writability after a background error: opens a
  /// fresh WAL, flushes the memtable (acked rows must not depend on the
  /// abandoned, possibly-torn log), rewrites and re-verifies the
  /// manifest, then clears the error and catches up on deferred
  /// compactions. Returns the blocking failure and stays read-only if
  /// any step fails (e.g. the disk is still full). Idempotent; cheap
  /// when already healthy.
  Status Resume();

  const IoStats& io_stats() const { return stats_; }
  IoStats* mutable_io_stats() { return &stats_; }

  int NumFilesAtLevel(int level) const;
  uint64_t TotalTableBytes() const;

 private:
  DB(const Options& options, std::string name);

  Status RecoverLogs();
  Status SwitchToNewLog();
  Status FlushMemTableLocked();            // requires mu_
  Status MaybeCompactLocked();             // requires mu_
  Status CompactLevelLocked(int level);    // requires mu_
  Status WriteLevel0TableLocked(MemTable* mem);
  void RemoveObsoleteFilesLocked();
  // First failure sticks and flips the DB read-only; requires mu_.
  void SetBackgroundErrorLocked(const Status& s);
  // Space-watermark gate, run before taking mu_ (the soft-watermark
  // throttle sleeps and must not block readers). Hard watermark: shed
  // with NoSpace before the WAL is touched. No-op when disabled.
  Status MaybeStallForSpace();
  // True when compactions should be deferred for lack of headroom.
  bool BelowSoftWatermark() const;

  Options options_;
  std::string dbname_;
  Env* env_;

  mutable std::mutex mu_;
  // shared_ptr: flush replaces the memtable while escaped iterators
  // (NewIterator snapshots) may still be reading the old one; each
  // iterator co-owns the memtable it was created against.
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<log::Writer> log_;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<VersionSet> versions_;
  // Sticky first write-path failure; OK when healthy. Guarded by mu_.
  Status bg_error_;

  BlockCache block_cache_;
  IoStats stats_;
  std::unique_ptr<TableCache> table_cache_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_DB_H_
