// Embedded LSM key-value store: WAL + memtable + leveled SSTables.
//
// This is the storage substrate standing in for HBase in the TraSS
// reproduction: it provides ordered row keys, range scans, durability via
// a write-ahead log, and I/O accounting. Flushes run synchronously on the
// writing thread; compactions run on a dedicated background thread per DB
// (Options::background_compaction, on by default) — inputs are picked and
// the result installed under the DB mutex, but the merge+build runs
// lock-free, so writes only wait when the L0 ingest throttle
// (l0_slowdown_trigger / l0_stop_trigger) says the level is too deep.
// With background_compaction off, compactions run synchronously on the
// writing thread as before.
//
// Failure semantics (RocksDB-style background-error model): any failed
// WAL append/sync, flush, or compaction sets a sticky background error
// and the DB degrades to read-only — Get/iterators/VerifyIntegrity keep
// working off the installed version, every write is rejected with the
// sticky status. Resume() re-establishes writability: it opens a fresh
// WAL (the old one may carry a torn record), persists the memtable so no
// acked row depends on the abandoned log, rewrites and re-verifies the
// manifest, and only then clears the error. Low-space watermarks
// (Options::soft/hard_space_watermark_bytes) stall and then shed writes
// *before* an actual ENOSPC can wedge the store.

#ifndef TRASS_KV_DB_H_
#define TRASS_KV_DB_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kv/cache.h"
#include "kv/dbformat.h"
#include "kv/env.h"
#include "kv/iterator.h"
#include "kv/log_writer.h"
#include "kv/memtable.h"
#include "kv/options.h"
#include "kv/stats.h"
#include "kv/table_cache.h"
#include "kv/version.h"
#include "kv/write_batch.h"

namespace trass {
namespace kv {

class DB {
 public:
  /// Opens (creating if allowed) the database at directory `name`.
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* db);

  /// Best-effort offline repair of the database at `name` (the DB must
  /// not be open). Rebuilds a fresh manifest from the SSTables that
  /// still pass a full checksum walk: unreadable/corrupt tables are
  /// quarantined (renamed to `<file>.bad`), survivors are installed at
  /// level 0, and the log number is reset so every surviving WAL is
  /// replayed on the next Open. Use when Open fails with a corrupt or
  /// missing manifest/CURRENT; what it cannot salvage is data whose only
  /// copy lived in a corrupt table or an unsynced WAL tail.
  static Status Repair(const Options& options, const std::string& name);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Write(const WriteOptions& options, WriteBatch* batch);

  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Forward iterator over live user keys, ordered bytewise. Reflects a
  /// point-in-time snapshot taken at creation.
  Iterator* NewIterator(const ReadOptions& options);

  /// Forces the memtable into an L0 SSTable. Due compactions are
  /// scheduled on the background thread (or run inline when
  /// background_compaction is off).
  Status Flush();

  /// Compacts everything down to the last non-empty level. Synchronous:
  /// waits for any in-flight background compaction, then runs the work
  /// on the calling thread and returns its first failure.
  Status CompactRange();

  /// Blocks until no background compaction is running or scheduled (or
  /// the DB is wedged by a background error). Deterministic settling
  /// point for tests and benchmarks.
  void WaitForCompactions();

  /// Scrub: re-reads every SSTable referenced by the current version
  /// (footer, filter, index, and all data blocks) straight from disk,
  /// verifying block checksums, and re-parses the manifest. Returns the
  /// first corruption found, with the offending file in the message.
  Status VerifyIntegrity();

  /// The sticky background error (OK when healthy). Set by any failed
  /// WAL append/sync, flush, or compaction; while set, the DB is
  /// read-only and every write fails fast with this status.
  Status background_error() const;
  /// True while a background error holds the DB in read-only mode.
  bool read_only() const;
  /// Attempts to restore writability after a background error: opens a
  /// fresh WAL, flushes the memtable (acked rows must not depend on the
  /// abandoned, possibly-torn log), rewrites and re-verifies the
  /// manifest, then clears the error and catches up on deferred
  /// compactions. Returns the blocking failure and stays read-only if
  /// any step fails (e.g. the disk is still full). Idempotent; cheap
  /// when already healthy.
  Status Resume();

  const IoStats& io_stats() const { return stats_; }
  IoStats* mutable_io_stats() { return &stats_; }

  int NumFilesAtLevel(int level) const;
  uint64_t TotalTableBytes() const;

 private:
  DB(const Options& options, std::string name);

  // One unit of compaction work, fully described by value so the merge
  // phase can run without the DB mutex: input files are copied out of
  // the version at pick time and the slot (compaction_active_) keeps any
  // other compaction from touching them until install.
  struct CompactionJob {
    int level = -1;
    std::vector<FileMetaData> inputs0;  // `level` inputs
    std::vector<FileMetaData> inputs1;  // overlapping `level+1` inputs
    bool bottom_most = false;           // tombstones can be dropped
  };

  // RAII reader pin: created under mu_ right after copying the current
  // version; while any pin is live, tables obsoleted by a compaction are
  // kept on disk (deletion deferred) so readers can still open them.
  class ScopedVersionPin {
   public:
    explicit ScopedVersionPin(DB* db) : db_(db) { ++db_->version_pins_; }
    ~ScopedVersionPin() { db_->UnpinVersion(); }
    ScopedVersionPin(const ScopedVersionPin&) = delete;
    ScopedVersionPin& operator=(const ScopedVersionPin&) = delete;

   private:
    DB* const db_;
  };

  Status RecoverLogs();
  Status SwitchToNewLog();
  Status FlushMemTableLocked();            // requires mu_
  // Background mode: marks compaction work pending and wakes the
  // compaction thread. Synchronous mode: runs due compactions inline
  // under mu_ (the seed write-path behavior). Requires mu_.
  Status MaybeCompactLocked();
  // One pick -> merge -> install cycle for `level`. Requires mu_ held;
  // when `lock` is non-null the merge phase releases it (background
  // thread), when null the whole cycle runs under mu_ (foreground).
  Status CompactOnce(std::unique_lock<std::mutex>* lock, int level);
  bool PickCompactionInputsLocked(int level, CompactionJob* job);
  Status RunCompaction(std::unique_lock<std::mutex>* lock,
                       const CompactionJob& job,
                       std::vector<FileMetaData>* outputs);
  Status InstallCompactionLocked(const CompactionJob& job,
                                 std::vector<FileMetaData>* outputs);
  uint64_t AllocFileNumber(std::unique_lock<std::mutex>* lock);
  void CompactionThreadMain();
  Status WriteLevel0TableLocked(MemTable* mem);
  void RemoveObsoleteFilesLocked();
  // Evicts `numbers` from the table/block caches and unlinks the files.
  void DropObsoleteTables(const std::vector<uint64_t>& numbers);
  void UnpinVersion();
  // First failure sticks and flips the DB read-only; requires mu_.
  void SetBackgroundErrorLocked(const Status& s);
  // Space-watermark gate, run before taking mu_ (the soft-watermark
  // throttle sleeps and must not block readers). Hard watermark: shed
  // with NoSpace before the WAL is touched. No-op when disabled.
  Status MaybeStallForSpace();
  // L0 ingest throttle, run before taking mu_ for a write: bounded sleep
  // at l0_slowdown_trigger, block until a compaction shrinks L0 at
  // l0_stop_trigger (with wedge/shutdown/deferred-work escape hatches).
  void MaybeThrottleForL0();
  // True when compactions should be deferred for lack of headroom.
  bool BelowSoftWatermark() const;

  Options options_;
  std::string dbname_;
  Env* env_;

  mutable std::mutex mu_;
  // shared_ptr: flush replaces the memtable while escaped iterators
  // (NewIterator snapshots) may still be reading the old one; each
  // iterator co-owns the memtable it was created against.
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<log::Writer> log_;
  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<VersionSet> versions_;
  // Sticky first write-path failure; OK when healthy. Guarded by mu_.
  Status bg_error_;

  // Compaction concurrency state, guarded by mu_ unless noted. The
  // "slot" invariant: at most one compaction (background or foreground)
  // is between pick and install at any time — compaction_active_ is the
  // slot, CompactRange waits on compaction_done_cv_ to take it.
  std::thread compaction_thread_;
  std::condition_variable bg_cv_;               // wakes the compactor
  std::condition_variable compaction_done_cv_;  // wakes slot/L0 waiters
  bool compaction_scheduled_ = false;
  bool compaction_active_ = false;
  std::atomic<bool> shutting_down_{false};
  // Reader pins + deferred table deletion: while version_pins_ > 0, a
  // Get/iterator/scrub may still open files of a replaced version, so
  // compaction install parks their numbers here instead of unlinking.
  int version_pins_ = 0;
  std::vector<uint64_t> obsolete_tables_;

  BlockCache block_cache_;
  IoStats stats_;
  std::unique_ptr<TableCache> table_cache_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_DB_H_
