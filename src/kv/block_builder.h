// Builds a sorted key/value block with prefix-compressed keys and restart
// points (one full key every `block_restart_interval` entries), enabling
// binary search without decompressing the whole block.

#ifndef TRASS_KV_BLOCK_BUILDER_H_
#define TRASS_KV_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace trass {
namespace kv {

class BlockBuilder {
 public:
  explicit BlockBuilder(int block_restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  /// Adds an entry; keys must arrive in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart array and returns the finished block payload.
  /// The returned slice stays valid until Reset().
  Slice Finish();

  void Reset();

  /// Byte estimate of the block if finished now.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int block_restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_BLOCK_BUILDER_H_
