// Keeps SSTable readers open and shared. Iterators capture the returned
// shared_ptr, so a table (and its open file descriptor) stays usable even
// after a compaction deletes the file from the directory.

#ifndef TRASS_KV_TABLE_CACHE_H_
#define TRASS_KV_TABLE_CACHE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kv/cache.h"
#include "kv/options.h"
#include "kv/stats.h"
#include "kv/table.h"
#include "util/status.h"

namespace trass {
namespace kv {

class TableCache {
 public:
  TableCache(std::string dbname, const Options& options, BlockCache* cache,
             IoStats* stats)
      : dbname_(std::move(dbname)),
        options_(options),
        block_cache_(cache),
        stats_(stats) {}

  /// Opens (or returns the already-open) table `file_number`.
  Status Get(uint64_t file_number, std::shared_ptr<Table>* table);

  /// Forgets a table after its file was deleted by compaction.
  void Evict(uint64_t file_number);

 private:
  const std::string dbname_;
  const Options options_;
  BlockCache* const block_cache_;
  IoStats* const stats_;

  std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Table>> tables_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_TABLE_CACHE_H_
