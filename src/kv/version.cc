#include "kv/version.h"

#include "kv/filename.h"
#include "util/coding.h"

namespace trass {
namespace kv {

std::vector<FileMetaData> Version::Overlapping(int level, const Slice& begin,
                                               const Slice& end) const {
  std::vector<FileMetaData> result;
  for (const FileMetaData& f : files[level]) {
    const Slice file_smallest = ExtractUserKey(Slice(f.smallest));
    const Slice file_largest = ExtractUserKey(Slice(f.largest));
    if (!begin.empty() && file_largest.compare(begin) < 0) continue;
    if (!end.empty() && file_smallest.compare(end) > 0) continue;
    result.push_back(f);
  }
  return result;
}

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMetaData& f : files[level]) total += f.file_size;
  return total;
}

int Version::NumFiles(int level) const {
  return static_cast<int>(files[level].size());
}

VersionSet::VersionSet(std::string dbname, Env* env)
    : dbname_(std::move(dbname)), env_(env) {}

namespace {

// Manifest payload:
//   next_file_number | last_sequence | log_number      (varint64 x3)
//   for each level: file_count, then per file:
//     number | file_size | smallest | largest
constexpr char kManifestMagic[] = "TRASSMF1";

}  // namespace

Status VersionSet::WriteSnapshot() {
  std::string contents(kManifestMagic, 8);
  PutVarint64(&contents, next_file_number_);
  PutVarint64(&contents, last_sequence_);
  PutVarint64(&contents, log_number_);
  for (int level = 0; level < kNumLevels; ++level) {
    PutVarint64(&contents, current_.files[level].size());
    for (const FileMetaData& f : current_.files[level]) {
      PutVarint64(&contents, f.number);
      PutVarint64(&contents, f.file_size);
      PutLengthPrefixedSlice(&contents, Slice(f.smallest));
      PutLengthPrefixedSlice(&contents, Slice(f.largest));
    }
  }
  const uint64_t manifest_number = NewFileNumber();
  const std::string fname = ManifestFileName(dbname_, manifest_number);
  // The manifest and the CURRENT pointer must be durable before CURRENT
  // is repointed: a crash after the rename with an unsynced manifest
  // would leave CURRENT referencing a missing/torn file. Snapshots are
  // rare (one per flush/compaction), so the fsyncs are cheap.
  Status s = env_->WriteStringToFile(Slice(contents), fname, /*sync=*/true);
  if (!s.ok()) return s;
  // Atomically repoint CURRENT via rename of a temp file.
  const std::string tmp = dbname_ + "/CURRENT.tmp";
  std::string pointer = "MANIFEST-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(manifest_number));
  pointer += buf;
  pointer += "\n";
  s = env_->WriteStringToFile(Slice(pointer), tmp, /*sync=*/true);
  if (!s.ok()) return s;
  s = env_->RenameFile(tmp, CurrentFileName(dbname_));
  if (!s.ok()) return s;
  // Best-effort cleanup of older manifests.
  std::vector<std::string> children;
  if (env_->GetChildren(dbname_, &children).ok()) {
    for (const auto& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kManifestFile && number != manifest_number) {
        env_->RemoveFile(dbname_ + "/" + child).ok();
      }
    }
  }
  return Status::OK();
}

Status VersionSet::Recover(bool* found_manifest) {
  *found_manifest = false;
  const std::string current_file = CurrentFileName(dbname_);
  if (!env_->FileExists(current_file)) return Status::OK();

  std::string pointer;
  Status s = env_->ReadFileToString(current_file, &pointer);
  if (!s.ok()) return s;
  while (!pointer.empty() &&
         (pointer.back() == '\n' || pointer.back() == '\r')) {
    pointer.pop_back();
  }
  const std::string manifest_path = dbname_ + "/" + pointer;
  std::string contents;
  s = env_->ReadFileToString(manifest_path, &contents);
  if (!s.ok()) return s;

  Slice input(contents);
  if (input.size() < 8 || std::string(input.data(), 8) != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  input.remove_prefix(8);
  uint64_t next_file, last_seq, log_number;
  if (!GetVarint64(&input, &next_file) || !GetVarint64(&input, &last_seq) ||
      !GetVarint64(&input, &log_number)) {
    return Status::Corruption("bad manifest header");
  }
  Version v;
  for (int level = 0; level < kNumLevels; ++level) {
    uint64_t count;
    if (!GetVarint64(&input, &count)) {
      return Status::Corruption("bad manifest level count");
    }
    for (uint64_t i = 0; i < count; ++i) {
      FileMetaData f;
      Slice smallest, largest;
      if (!GetVarint64(&input, &f.number) ||
          !GetVarint64(&input, &f.file_size) ||
          !GetLengthPrefixedSlice(&input, &smallest) ||
          !GetLengthPrefixedSlice(&input, &largest)) {
        return Status::Corruption("bad manifest file entry");
      }
      f.smallest = smallest.ToString();
      f.largest = largest.ToString();
      v.files[level].push_back(std::move(f));
    }
  }
  current_ = std::move(v);
  next_file_number_ = next_file;
  last_sequence_ = last_seq;
  log_number_ = log_number;
  *found_manifest = true;
  return Status::OK();
}

int VersionSet::PickCompactionLevel(int l0_trigger,
                                    uint64_t level_base_bytes) const {
  if (current_.NumFiles(0) >= l0_trigger) return 0;
  uint64_t budget = level_base_bytes;
  for (int level = 1; level < kNumLevels - 1; ++level) {
    if (current_.LevelBytes(level) > budget) return level;
    budget *= 10;
  }
  return -1;
}

}  // namespace kv
}  // namespace trass
