// K-way merge over child iterators in internal-key order. Children with
// the same user key surface newest-first (internal key order), letting the
// DB iterator pick the visible version and skip shadowed ones.

#ifndef TRASS_KV_MERGING_ITERATOR_H_
#define TRASS_KV_MERGING_ITERATOR_H_

#include <vector>

#include "kv/iterator.h"

namespace trass {
namespace kv {

/// Takes ownership of the child iterators.
Iterator* NewMergingIterator(std::vector<Iterator*> children);

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_MERGING_ITERATOR_H_
