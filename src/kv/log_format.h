// Write-ahead-log framing shared by writer and reader.
//
// The log is a sequence of 32 KiB blocks. Each record fragment carries a
// 7-byte header: crc32c(4) | length(2, little endian) | type(1). Records
// larger than the space left in a block are split into FIRST/MIDDLE/LAST
// fragments; a block tail smaller than the header is zero-padded.

#ifndef TRASS_KV_LOG_FORMAT_H_
#define TRASS_KV_LOG_FORMAT_H_

namespace trass {
namespace kv {
namespace log {

enum RecordType {
  kZeroType = 0,  // reserved for zero-padded pre-allocated areas
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
constexpr int kMaxRecordType = kLastType;

constexpr int kBlockSize = 32768;
constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_LOG_FORMAT_H_
