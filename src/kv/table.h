// Immutable SSTable reader: footer -> index block -> (cached) data blocks,
// with a per-table bloom filter consulted before any data block read.

#ifndef TRASS_KV_TABLE_H_
#define TRASS_KV_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "kv/block.h"
#include "kv/cache.h"
#include "kv/env.h"
#include "kv/format.h"
#include "kv/iterator.h"
#include "kv/options.h"
#include "kv/stats.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class Table {
 public:
  /// Opens the table stored in `file` (ownership taken). `file_id` keys
  /// the block cache; `cache` and `stats` may be null.
  static Status Open(const Options& options, uint64_t file_id,
                     std::unique_ptr<RandomAccessFile> file,
                     BlockCache* cache, IoStats* stats,
                     std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Iterator over the table's (internal key, value) entries. The table
  /// must outlive the iterator.
  Iterator* NewIterator(const ReadOptions& options) const;

  /// Point lookup: positions at the first entry with internal key >=
  /// `internal_key`. Sets *found=false when the table cannot contain the
  /// user key (bloom miss) or the seek went past the end.
  Status InternalGet(const ReadOptions& options, const Slice& internal_key,
                     bool* found, std::string* result_key,
                     std::string* result_value) const;

  uint64_t file_id() const { return file_id_; }

 private:
  struct Rep;

  explicit Table(std::unique_ptr<Rep> rep);

  /// Converts an index-block value (encoded handle) into a data block
  /// iterator, consulting the block cache.
  static Iterator* BlockReader(void* arg, const ReadOptions& options,
                               const Slice& index_value);

  std::shared_ptr<const Block> ReadDataBlock(const ReadOptions& options,
                                             const BlockHandle& handle,
                                             Status* s) const;

  std::unique_ptr<Rep> rep_;
  uint64_t file_id_;

  friend class TwoLevelIteratorTestPeer;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_TABLE_H_
