// Generic two-level iterator: an index iterator whose values describe
// lower-level blocks, and a factory that opens a block iterator on demand.

#ifndef TRASS_KV_TWO_LEVEL_ITERATOR_H_
#define TRASS_KV_TWO_LEVEL_ITERATOR_H_

#include "kv/iterator.h"
#include "kv/options.h"

namespace trass {
namespace kv {

using BlockFunction = Iterator* (*)(void* arg, const ReadOptions& options,
                                    const Slice& index_value);

/// Takes ownership of `index_iter`.
Iterator* NewTwoLevelIterator(Iterator* index_iter,
                              BlockFunction block_function, void* arg,
                              const ReadOptions& options);

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_TWO_LEVEL_ITERATOR_H_
