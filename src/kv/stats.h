// I/O counters the evaluation harness reads: the paper's comparisons are
// largely about how many rows/bytes each index forces the store to touch.

#ifndef TRASS_KV_STATS_H_
#define TRASS_KV_STATS_H_

#include <atomic>
#include <cstdint>

namespace trass {
namespace kv {

struct IoStats {
  std::atomic<uint64_t> blocks_read{0};       // data blocks fetched from disk
  std::atomic<uint64_t> block_bytes_read{0};  // payload bytes of those blocks
  std::atomic<uint64_t> cache_hits{0};        // data blocks served from cache
  std::atomic<uint64_t> cache_misses{0};      // cache lookups that went to disk
  std::atomic<uint64_t> cache_fills{0};       // blocks inserted into the cache
  std::atomic<uint64_t> readahead_reads{0};   // readahead window preads issued
  std::atomic<uint64_t> readahead_bytes_read{0};  // bytes those preads fetched
  std::atomic<uint64_t> rows_scanned{0};      // entries yielded to scans
  std::atomic<uint64_t> bloom_skips{0};       // tables skipped by bloom
  std::atomic<uint64_t> point_gets{0};
  std::atomic<uint64_t> range_scans{0};
  std::atomic<uint64_t> checksum_verifications{0};  // blocks CRC-checked
  std::atomic<uint64_t> corruptions_detected{0};    // checksum mismatches
  std::atomic<uint64_t> replica_failovers{0};  // reads moved to another replica
  std::atomic<uint64_t> scrub_rounds{0};       // anti-entropy passes started
  std::atomic<uint64_t> replicas_rebuilt{0};   // replicas restored from a peer
  std::atomic<uint64_t> batch_commits{0};      // group-commit batches applied
  std::atomic<uint64_t> batch_rows{0};         // rows inside those batches
  std::atomic<uint64_t> degraded_writes{0};    // batches acked by < all replicas
  std::atomic<uint64_t> background_errors{0};  // sticky write-path failures
  std::atomic<uint64_t> write_stalls{0};       // writes throttled or shed
  std::atomic<uint64_t> stall_ms{0};           // total time writes spent stalled
  std::atomic<uint64_t> resume_attempts{0};    // Resume() calls (incl. probes)

  void Reset() {
    blocks_read = 0;
    block_bytes_read = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_fills = 0;
    readahead_reads = 0;
    readahead_bytes_read = 0;
    rows_scanned = 0;
    bloom_skips = 0;
    point_gets = 0;
    range_scans = 0;
    checksum_verifications = 0;
    corruptions_detected = 0;
    replica_failovers = 0;
    scrub_rounds = 0;
    replicas_rebuilt = 0;
    batch_commits = 0;
    batch_rows = 0;
    degraded_writes = 0;
    background_errors = 0;
    write_stalls = 0;
    stall_ms = 0;
    resume_attempts = 0;
  }

  struct Snapshot {
    uint64_t blocks_read;
    uint64_t block_bytes_read;
    uint64_t cache_hits;
    uint64_t cache_misses;
    uint64_t cache_fills;
    uint64_t readahead_reads;
    uint64_t readahead_bytes_read;
    uint64_t rows_scanned;
    uint64_t bloom_skips;
    uint64_t point_gets;
    uint64_t range_scans;
    uint64_t checksum_verifications;
    uint64_t corruptions_detected;
    uint64_t replica_failovers;
    uint64_t scrub_rounds;
    uint64_t replicas_rebuilt;
    uint64_t batch_commits;
    uint64_t batch_rows;
    uint64_t degraded_writes;
    uint64_t background_errors;
    uint64_t write_stalls;
    uint64_t stall_ms;
    uint64_t resume_attempts;
    // Gauge, not a counter: replicas currently wedged read-only. Always
    // 0 at the DB level; RegionStore::TotalIoStats fills it live.
    uint64_t read_only_replicas = 0;
  };

  Snapshot Read() const {
    return Snapshot{blocks_read.load(),
                    block_bytes_read.load(),
                    cache_hits.load(),
                    cache_misses.load(),
                    cache_fills.load(),
                    readahead_reads.load(),
                    readahead_bytes_read.load(),
                    rows_scanned.load(),
                    bloom_skips.load(),
                    point_gets.load(),
                    range_scans.load(),
                    checksum_verifications.load(),
                    corruptions_detected.load(),
                    replica_failovers.load(),
                    scrub_rounds.load(),
                    replicas_rebuilt.load(),
                    batch_commits.load(),
                    batch_rows.load(),
                    degraded_writes.load(),
                    background_errors.load(),
                    write_stalls.load(),
                    stall_ms.load(),
                    resume_attempts.load()};
  }
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_STATS_H_
