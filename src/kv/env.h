// Minimal file-system environment used by the storage engine: sequential
// and random-access readers, an append-only writer, and directory
// operations. POSIX-backed; everything returns Status instead of throwing.

#ifndef TRASS_KV_ENV_H_
#define TRASS_KV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

/// Append-only file used for WAL and SSTable writing.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional reads used by SSTable readers.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at `offset`; *result points into `scratch`.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Forward-only reads used by WAL recovery.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

class Env {
 public:
  static Env* Default();

  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDirRecursively(const std::string& dirname) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  /// Free bytes available on the filesystem holding `path`. Wrapper envs
  /// that model a disk-space budget (FaultInjectionEnv) report their
  /// remaining budget instead; the DB's space watermarks read this.
  virtual Status GetFreeDiskSpace(const std::string& path, uint64_t* bytes);
  virtual Status ReadFileToString(const std::string& fname,
                                  std::string* data) = 0;
  virtual Status WriteStringToFile(const Slice& data,
                                   const std::string& fname, bool sync) = 0;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_ENV_H_
