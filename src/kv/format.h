// On-disk SSTable plumbing: block handles, the fixed footer, and the
// checksummed block read path.
//
// Layout of an SSTable:
//   [data block 1] ... [data block N]
//   [filter block]            (bloom over user keys; optional)
//   [index block]             (last-key -> data block handle)
//   [footer]                  (filter handle | index handle | magic)
// Every block is followed by a 5-byte trailer: type byte (0 = raw) and
// crc32c of payload+type.

#ifndef TRASS_KV_FORMAT_H_
#define TRASS_KV_FORMAT_H_

#include <cstdint>
#include <string>

#include "kv/env.h"
#include "kv/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class BlockHandle {
 public:
  BlockHandle() : offset_(~0ull), size_(~0ull) {}
  BlockHandle(uint64_t offset, uint64_t size)
      : offset_(offset), size_(size) {}

  uint64_t offset() const { return offset_; }
  uint64_t size() const { return size_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  /// Maximum encoded length (two varint64s).
  static constexpr size_t kMaxEncodedLength = 10 + 10;

 private:
  uint64_t offset_;
  uint64_t size_;
};

class Footer {
 public:
  const BlockHandle& filter_handle() const { return filter_handle_; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_filter_handle(const BlockHandle& h) { filter_handle_ = h; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;

 private:
  BlockHandle filter_handle_;
  BlockHandle index_handle_;
};

static constexpr uint64_t kTableMagicNumber = 0x7472615353544232ull;  // "traSSTB2"
static constexpr size_t kBlockTrailerSize = 5;

struct BlockContents {
  std::string data;
};

/// Reads and verifies the block at `handle`.
Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result);

/// Verifies a block already in memory: `data` points at `payload_size`
/// payload bytes followed by the kBlockTrailerSize trailer. Checks the
/// compression-type byte always and the crc32c when `verify_checksum`.
/// Used by the readahead scan path to validate blocks in place without
/// copying them out of the window buffer.
Status VerifyBlockInPlace(const char* data, size_t payload_size,
                          bool verify_checksum);

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_FORMAT_H_
