#include "kv/table.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "kv/dbformat.h"
#include "kv/bloom.h"
#include "kv/two_level_iterator.h"
#include "util/coding.h"

namespace trass {
namespace kv {

struct Table::Rep {
  Options options;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t file_id = 0;
  std::unique_ptr<Block> index_block;
  std::string filter_data;  // empty when the table has no filter
  BlockCache* cache = nullptr;
  IoStats* stats = nullptr;
};

Table::Table(std::unique_ptr<Rep> rep)
    : rep_(std::move(rep)), file_id_(rep_->file_id) {}

Table::~Table() = default;

Status Table::Open(const Options& options, uint64_t file_id,
                   std::unique_ptr<RandomAccessFile> file, BlockCache* cache,
                   IoStats* stats, std::unique_ptr<Table>* table) {
  table->reset();
  const uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;
  if (footer_input.size() != Footer::kEncodedLength) {
    return Status::Corruption("truncated footer read");
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  ReadOptions opts;
  opts.verify_checksums = true;
  BlockContents index_contents;
  s = ReadBlock(file.get(), opts, footer.index_handle(), &index_contents);
  if (!s.ok()) return s;

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->file_id = file_id;
  rep->index_block = std::make_unique<Block>(std::move(index_contents.data));
  rep->cache = cache;
  rep->stats = stats;

  if (footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    s = ReadBlock(file.get(), opts, footer.filter_handle(), &filter_contents);
    if (!s.ok()) return s;
    rep->filter_data = std::move(filter_contents.data);
  }
  rep->file = std::move(file);

  table->reset(new Table(std::move(rep)));
  return Status::OK();
}

std::shared_ptr<const Block> Table::ReadDataBlock(const ReadOptions& options,
                                                  const BlockHandle& handle,
                                                  Status* s) const {
  *s = Status::OK();
  if (rep_->cache != nullptr) {
    BlockCache::Key key{rep_->file_id, handle.offset()};
    if (auto cached = rep_->cache->Lookup(key)) {
      if (rep_->stats) {
        rep_->stats->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return cached;
    }
    if (rep_->stats) {
      rep_->stats->cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  BlockContents contents;
  if (rep_->stats && options.verify_checksums) {
    rep_->stats->checksum_verifications.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  *s = ReadBlock(rep_->file.get(), options, handle, &contents);
  if (!s->ok()) {
    if (rep_->stats && s->IsCorruption()) {
      rep_->stats->corruptions_detected.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    return nullptr;
  }
  if (rep_->stats) {
    rep_->stats->blocks_read.fetch_add(1, std::memory_order_relaxed);
    rep_->stats->block_bytes_read.fetch_add(contents.data.size(),
                                            std::memory_order_relaxed);
  }
  auto block = std::make_shared<Block>(std::move(contents.data));
  if (rep_->cache != nullptr && options.fill_cache) {
    rep_->cache->Insert(BlockCache::Key{rep_->file_id, handle.offset()}, block,
                        block->size());
    if (rep_->stats) {
      rep_->stats->cache_fills.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return block;
}

namespace {

// Wraps a Block iterator and keeps the Block alive alongside it.
class OwningBlockIterator final : public Iterator {
 public:
  OwningBlockIterator(std::shared_ptr<const Block> block)
      : block_(std::move(block)), iter_(block_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> iter_;
};

// Streaming table iterator for sequential scans. Instead of the
// cache-backed block-at-a-time path it keeps one reusable readahead
// window of the file in memory: each refill preads up to
// ReadOptions::readahead_bytes starting at the needed block (doubling
// from a small initial window while the access pattern stays
// sequential), and data blocks are parsed in place as non-owning Block
// views, so key/value Slices are handed out with no per-block copy or
// allocation and no cache lookups/fills. Iteration semantics — empty
// block skipping, error capture, Seek positioning — mirror
// TwoLevelIterator exactly.
class ReadaheadTableIterator final : public Iterator {
 public:
  ReadaheadTableIterator(Iterator* index_iter, RandomAccessFile* file,
                         uint64_t file_size, IoStats* stats,
                         const ReadOptions& options)
      : index_iter_(index_iter),
        file_(file),
        file_size_(file_size),
        stats_(stats),
        verify_checksums_(options.verify_checksums),
        limit_(std::max<size_t>(options.readahead_bytes, kMinWindow)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!index_iter_->status().ok()) return index_iter_->status();
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  static constexpr size_t kMinWindow = 32 * 1024;

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (data_iter_ != nullptr && !data_iter_->status().ok()) {
        SaveError(data_iter_->status());
      }
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      data_iter_.reset();
      return;
    }
    const Slice handle_value = index_iter_->value();
    if (data_iter_ != nullptr && handle_value == current_handle_) {
      return;  // same block as before; keep position
    }
    data_iter_.reset(LoadBlock(handle_value));
    current_handle_ = handle_value.ToString();
  }

  Iterator* LoadBlock(const Slice& index_value) {
    BlockHandle handle;
    Slice input = index_value;
    Status s = handle.DecodeFrom(&input);
    if (!s.ok()) return NewEmptyIterator(s);
    const uint64_t begin = handle.offset();
    const size_t need =
        static_cast<size_t>(handle.size()) + kBlockTrailerSize;
    // The old view (and any iterator into it) must be gone before the
    // buffer it points into is replaced.
    block_.reset();
    if (window_data_ == nullptr || begin < window_offset_ ||
        begin + need > window_offset_ + window_len_) {
      s = Refill(begin, need);
      if (!s.ok()) return NewEmptyIterator(s);
    }
    const char* block_data = window_data_ + (begin - window_offset_);
    if (stats_ && verify_checksums_) {
      stats_->checksum_verifications.fetch_add(1, std::memory_order_relaxed);
    }
    s = VerifyBlockInPlace(block_data, handle.size(), verify_checksums_);
    if (!s.ok()) {
      if (stats_ && s.IsCorruption()) {
        stats_->corruptions_detected.fetch_add(1, std::memory_order_relaxed);
      }
      return NewEmptyIterator(s);
    }
    if (stats_) {
      stats_->blocks_read.fetch_add(1, std::memory_order_relaxed);
      stats_->block_bytes_read.fetch_add(handle.size(),
                                         std::memory_order_relaxed);
    }
    block_.emplace(block_data, static_cast<size_t>(handle.size()));
    return block_->NewIterator();
  }

  Status Refill(uint64_t offset, size_t need) {
    if (offset + need > file_size_) {
      return Status::Corruption("block handle past end of file");
    }
    // Ramp the window while the reader stays sequential (the next block
    // begins inside or directly after the current window); reset to the
    // initial window on a jump so a short scan after a far Seek does not
    // pay a full-sized pread.
    const bool sequential = window_len_ > 0 && offset >= window_offset_ &&
                            offset <= window_offset_ + window_len_;
    if (sequential) {
      window_target_ = std::min(window_target_ * 2, limit_);
    } else {
      window_target_ = std::min(limit_, std::max(need, kMinWindow));
    }
    size_t len = std::max(window_target_, need);
    len = static_cast<size_t>(
        std::min<uint64_t>(len, file_size_ - offset));
    buffer_.resize(len);
    Slice result;
    Status s = file_->Read(offset, len, &result, buffer_.data());
    if (!s.ok()) return s;
    if (result.size() < need) {
      return Status::Corruption("truncated block read");
    }
    window_data_ = result.data();
    window_offset_ = offset;
    window_len_ = result.size();
    if (stats_) {
      stats_->readahead_reads.fetch_add(1, std::memory_order_relaxed);
      stats_->readahead_bytes_read.fetch_add(result.size(),
                                             std::memory_order_relaxed);
    }
    return Status::OK();
  }

  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) status_ = s;
  }

  std::unique_ptr<Iterator> index_iter_;
  RandomAccessFile* const file_;
  const uint64_t file_size_;
  IoStats* const stats_;
  const bool verify_checksums_;
  const size_t limit_;

  std::vector<char> buffer_;
  const char* window_data_ = nullptr;  // into buffer_ (or env-owned bytes)
  uint64_t window_offset_ = 0;
  size_t window_len_ = 0;
  size_t window_target_ = 0;

  std::optional<Block> block_;  // non-owning view into the window
  std::unique_ptr<Iterator> data_iter_;
  std::string current_handle_;
  Status status_;
};

}  // namespace

Iterator* Table::BlockReader(void* arg, const ReadOptions& options,
                             const Slice& index_value) {
  auto* table = reinterpret_cast<Table*>(arg);
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewEmptyIterator(s);
  auto block = table->ReadDataBlock(options, handle, &s);
  if (block == nullptr) return NewEmptyIterator(s);
  return new OwningBlockIterator(std::move(block));
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  if (options.readahead_bytes > 0) {
    return new ReadaheadTableIterator(rep_->index_block->NewIterator(),
                                      rep_->file.get(), rep_->file->Size(),
                                      rep_->stats, options);
  }
  return NewTwoLevelIterator(rep_->index_block->NewIterator(),
                             &Table::BlockReader,
                             const_cast<Table*>(this), options);
}

Status Table::InternalGet(const ReadOptions& options,
                          const Slice& internal_key, bool* found,
                          std::string* result_key,
                          std::string* result_value) const {
  *found = false;
  if (!rep_->filter_data.empty()) {
    const Slice user_key = ExtractUserKey(internal_key);
    if (!BloomKeyMayMatch(user_key, Slice(rep_->filter_data))) {
      if (rep_->stats) {
        rep_->stats->bloom_skips.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
  }
  std::unique_ptr<Iterator> index_iter(rep_->index_block->NewIterator());
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) return index_iter->status();
  BlockHandle handle;
  Slice input = index_iter->value();
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return s;
  auto block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return s;
  std::unique_ptr<Iterator> block_iter(block->NewIterator());
  block_iter->Seek(internal_key);
  if (!block_iter->Valid()) return block_iter->status();
  *found = true;
  result_key->assign(block_iter->key().data(), block_iter->key().size());
  result_value->assign(block_iter->value().data(), block_iter->value().size());
  return Status::OK();
}

}  // namespace kv
}  // namespace trass
