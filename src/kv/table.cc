#include "kv/table.h"

#include "kv/dbformat.h"
#include "kv/bloom.h"
#include "kv/two_level_iterator.h"
#include "util/coding.h"

namespace trass {
namespace kv {

struct Table::Rep {
  Options options;
  std::unique_ptr<RandomAccessFile> file;
  uint64_t file_id = 0;
  std::unique_ptr<Block> index_block;
  std::string filter_data;  // empty when the table has no filter
  BlockCache* cache = nullptr;
  IoStats* stats = nullptr;
};

Table::Table(std::unique_ptr<Rep> rep)
    : rep_(std::move(rep)), file_id_(rep_->file_id) {}

Table::~Table() = default;

Status Table::Open(const Options& options, uint64_t file_id,
                   std::unique_ptr<RandomAccessFile> file, BlockCache* cache,
                   IoStats* stats, std::unique_ptr<Table>* table) {
  table->reset();
  const uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable");
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space);
  if (!s.ok()) return s;
  if (footer_input.size() != Footer::kEncodedLength) {
    return Status::Corruption("truncated footer read");
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) return s;

  ReadOptions opts;
  opts.verify_checksums = true;
  BlockContents index_contents;
  s = ReadBlock(file.get(), opts, footer.index_handle(), &index_contents);
  if (!s.ok()) return s;

  auto rep = std::make_unique<Rep>();
  rep->options = options;
  rep->file_id = file_id;
  rep->index_block = std::make_unique<Block>(std::move(index_contents.data));
  rep->cache = cache;
  rep->stats = stats;

  if (footer.filter_handle().size() > 0) {
    BlockContents filter_contents;
    s = ReadBlock(file.get(), opts, footer.filter_handle(), &filter_contents);
    if (!s.ok()) return s;
    rep->filter_data = std::move(filter_contents.data);
  }
  rep->file = std::move(file);

  table->reset(new Table(std::move(rep)));
  return Status::OK();
}

std::shared_ptr<const Block> Table::ReadDataBlock(const ReadOptions& options,
                                                  const BlockHandle& handle,
                                                  Status* s) const {
  *s = Status::OK();
  if (rep_->cache != nullptr) {
    BlockCache::Key key{rep_->file_id, handle.offset()};
    if (auto cached = rep_->cache->Lookup(key)) {
      if (rep_->stats) {
        rep_->stats->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return cached;
    }
  }
  BlockContents contents;
  if (rep_->stats && options.verify_checksums) {
    rep_->stats->checksum_verifications.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  *s = ReadBlock(rep_->file.get(), options, handle, &contents);
  if (!s->ok()) {
    if (rep_->stats && s->IsCorruption()) {
      rep_->stats->corruptions_detected.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    return nullptr;
  }
  if (rep_->stats) {
    rep_->stats->blocks_read.fetch_add(1, std::memory_order_relaxed);
    rep_->stats->block_bytes_read.fetch_add(contents.data.size(),
                                            std::memory_order_relaxed);
  }
  auto block = std::make_shared<Block>(std::move(contents.data));
  if (rep_->cache != nullptr && options.fill_cache) {
    rep_->cache->Insert(BlockCache::Key{rep_->file_id, handle.offset()}, block,
                        block->size());
  }
  return block;
}

namespace {

// Wraps a Block iterator and keeps the Block alive alongside it.
class OwningBlockIterator final : public Iterator {
 public:
  OwningBlockIterator(std::shared_ptr<const Block> block)
      : block_(std::move(block)), iter_(block_->NewIterator()) {}

  bool Valid() const override { return iter_->Valid(); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void Seek(const Slice& target) override { iter_->Seek(target); }
  void Next() override { iter_->Next(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  std::shared_ptr<const Block> block_;
  std::unique_ptr<Iterator> iter_;
};

}  // namespace

Iterator* Table::BlockReader(void* arg, const ReadOptions& options,
                             const Slice& index_value) {
  auto* table = reinterpret_cast<Table*>(arg);
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return NewEmptyIterator(s);
  auto block = table->ReadDataBlock(options, handle, &s);
  if (block == nullptr) return NewEmptyIterator(s);
  return new OwningBlockIterator(std::move(block));
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(rep_->index_block->NewIterator(),
                             &Table::BlockReader,
                             const_cast<Table*>(this), options);
}

Status Table::InternalGet(const ReadOptions& options,
                          const Slice& internal_key, bool* found,
                          std::string* result_key,
                          std::string* result_value) const {
  *found = false;
  if (!rep_->filter_data.empty()) {
    const Slice user_key = ExtractUserKey(internal_key);
    if (!BloomKeyMayMatch(user_key, Slice(rep_->filter_data))) {
      if (rep_->stats) {
        rep_->stats->bloom_skips.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
  }
  std::unique_ptr<Iterator> index_iter(rep_->index_block->NewIterator());
  index_iter->Seek(internal_key);
  if (!index_iter->Valid()) return index_iter->status();
  BlockHandle handle;
  Slice input = index_iter->value();
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) return s;
  auto block = ReadDataBlock(options, handle, &s);
  if (block == nullptr) return s;
  std::unique_ptr<Iterator> block_iter(block->NewIterator());
  block_iter->Seek(internal_key);
  if (!block_iter->Valid()) return block_iter->status();
  *found = true;
  result_key->assign(block_iter->key().data(), block_iter->key().size());
  result_value->assign(block_iter->value().data(), block_iter->value().size());
  return Status::OK();
}

}  // namespace kv
}  // namespace trass
