// Writes a sorted run of (internal key, value) pairs into the SSTable
// format described in format.h.

#ifndef TRASS_KV_TABLE_BUILDER_H_
#define TRASS_KV_TABLE_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "kv/block_builder.h"
#include "kv/bloom.h"
#include "kv/env.h"
#include "kv/format.h"
#include "kv/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class TableBuilder {
 public:
  /// `file` must remain open until Finish(); the builder does not own it.
  TableBuilder(const Options& options, WritableFile* file);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  /// Adds an entry; internal keys must arrive in strictly increasing order.
  void Add(const Slice& internal_key, const Slice& value);

  /// Writes filter block, index block, and footer.
  Status Finish();

  Status status() const { return status_; }
  uint64_t NumEntries() const { return num_entries_; }
  uint64_t FileSize() const { return offset_; }

 private:
  void FlushDataBlock();
  void WriteBlock(BlockBuilder* block, BlockHandle* handle);
  void WriteRawBlock(const Slice& contents, BlockHandle* handle);

  Options options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::unique_ptr<BloomFilterBuilder> filter_;
  std::string last_key_;
  uint64_t num_entries_ = 0;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  bool finished_ = false;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_TABLE_BUILDER_H_
