#include "kv/region_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/coding.h"
#include "util/crc32c.h"

namespace trass {
namespace kv {

RegionStore::RegionStore(const RegionOptions& options, std::string path)
    : options_(options),
      path_(std::move(path)),
      retry_policy_(RetryPolicy::Options{
          options.max_scan_retries, options.retry_backoff_ms,
          options.max_retry_backoff_ms, /*jitter=*/0.0}) {
  env_ = options_.db_options.env != nullptr ? options_.db_options.env
                                            : Env::Default();
}

std::string RegionStore::ReplicaPath(size_t region, int replica) const {
  std::string p = path_ + "/region-" + std::to_string(region);
  if (replica > 0) p += "-replica-" + std::to_string(replica);
  return p;
}

Status RegionStore::Open(const RegionOptions& options, const std::string& path,
                         std::unique_ptr<RegionStore>* store) {
  store->reset();
  if (options.num_regions < 1 || options.num_regions > 256) {
    return Status::InvalidArgument("num_regions must be in [1, 256]");
  }
  if (options.replication_factor < 1 || options.replication_factor > 8) {
    return Status::InvalidArgument("replication_factor must be in [1, 8]");
  }
  std::unique_ptr<RegionStore> impl(new RegionStore(options, path));
  Status s = impl->env_->CreateDir(path);
  if (!s.ok()) return s;
  impl->replicas_.resize(options.num_regions);
  impl->health_.resize(options.num_regions);
  impl->scans_started_.assign(options.num_regions, 0);
  for (int i = 0; i < options.num_regions; ++i) {
    impl->replicas_[i].resize(options.replication_factor);
    impl->health_[i].replicas.resize(options.replication_factor);
    for (int r = 0; r < options.replication_factor; ++r) {
      std::unique_ptr<DB> db;
      s = DB::Open(options.db_options, impl->ReplicaPath(i, r), &db);
      if (!s.ok()) {
        return s.WithContext("region " + std::to_string(i) + " replica " +
                             std::to_string(r));
      }
      impl->replicas_[i][r] = std::move(db);
    }
  }
  impl->pool_ = std::make_unique<ThreadPool>(options.scan_threads);
  *store = std::move(impl);
  return Status::OK();
}

namespace {

Status CheckKey(const Slice& key, int num_regions) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  const int shard = static_cast<unsigned char>(key[0]);
  if (shard >= num_regions) {
    return Status::InvalidArgument("shard byte out of range");
  }
  return Status::OK();
}

Status OfflineStatus() {
  return Status::IoError("replica offline (rebuilding)");
}

}  // namespace

std::shared_ptr<DB> RegionStore::Replica(size_t region, int replica) const {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  return replicas_[region][replica];
}

Status RegionStore::Put(const WriteOptions& options, const Slice& key,
                        const Slice& value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  const size_t shard = static_cast<unsigned char>(key[0]);
  for (int r = 0; r < options_.replication_factor; ++r) {
    std::shared_ptr<DB> db = Replica(shard, r);
    s = db != nullptr ? db->Put(options, key, value) : OfflineStatus();
    if (!s.ok()) {
      return s.WithContext("region " + std::to_string(shard) + " replica " +
                           std::to_string(r));
    }
  }
  return Status::OK();
}

Status RegionStore::ApplyBatch(const WriteOptions& options, int shard,
                               WriteBatch* batch, int min_acks) {
  if (shard < 0 || shard >= num_regions()) {
    return Status::InvalidArgument("shard out of range");
  }
  if (batch == nullptr || batch->Count() == 0) return Status::OK();
  const int factor = options_.replication_factor;
  const int required =
      min_acks <= 0 ? factor : std::min(min_acks, factor);
  int acks = 0;
  Status first_failure;
  for (int r = 0; r < factor; ++r) {
    std::shared_ptr<DB> db = Replica(shard, r);
    // DB::Write stamps the batch with that replica's own sequence
    // numbers, so reusing one batch across replicas is safe.
    Status s = db != nullptr ? db->Write(options, batch) : OfflineStatus();
    if (s.ok()) {
      ++acks;
      continue;
    }
    s = s.WithContext("region " + std::to_string(shard) + " replica " +
                      std::to_string(r));
    RecordReplicaFailure(shard, r, s);
    if (first_failure.ok()) first_failure = s;
  }
  if (acks < required) return first_failure;
  store_stats_.batch_commits.fetch_add(1, std::memory_order_relaxed);
  store_stats_.batch_rows.fetch_add(batch->Count(),
                                    std::memory_order_relaxed);
  if (acks < factor) {
    store_stats_.degraded_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status RegionStore::Delete(const WriteOptions& options, const Slice& key) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  const size_t shard = static_cast<unsigned char>(key[0]);
  for (int r = 0; r < options_.replication_factor; ++r) {
    std::shared_ptr<DB> db = Replica(shard, r);
    s = db != nullptr ? db->Delete(options, key) : OfflineStatus();
    if (!s.ok()) {
      return s.WithContext("region " + std::to_string(shard) + " replica " +
                           std::to_string(r));
    }
  }
  return Status::OK();
}

Status RegionStore::Get(const ReadOptions& options, const Slice& key,
                        std::string* value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  ReadOptions read_options = options;
  read_options.verify_checksums = true;
  const size_t shard = static_cast<unsigned char>(key[0]);
  Status last;
  for (int r = 0; r < options_.replication_factor; ++r) {
    if (r > 0) {
      store_stats_.replica_failovers.fetch_add(1, std::memory_order_relaxed);
      RecordFailovers(shard, 1);
    }
    std::shared_ptr<DB> db = Replica(shard, r);
    last = db != nullptr ? db->Get(read_options, key, value)
                         : OfflineStatus();
    // A hit is served; a miss is authoritative (writes are synchronous
    // to every replica) — only a *fault* fails over.
    if (last.ok() || last.IsNotFound()) {
      return last.WithContext("region " + std::to_string(shard));
    }
  }
  return last.WithContext("region " + std::to_string(shard));
}

Status RegionStore::Scan(const std::vector<ScanRange>& ranges,
                         const ScanFilter* filter, std::vector<Row>* out,
                         ScanReport* report, const QueryContext* control) {
  return ScanInternal(ranges, filter, /*limit=*/0, out, report, control);
}

Status RegionStore::ScanWithLimit(const std::vector<ScanRange>& ranges,
                                  const ScanFilter* filter, size_t limit,
                                  std::vector<Row>* out, ScanReport* report,
                                  const QueryContext* control) {
  return ScanInternal(ranges, filter, limit, out, report, control);
}

Status RegionStore::ScanReplicaOnce(DB* db, size_t region,
                                    const std::vector<ScanRange>& ranges,
                                    const ScanFilter* filter, size_t limit,
                                    const QueryContext* control,
                                    std::vector<Row>* rows) {
  ReadOptions read_options;
  read_options.verify_checksums = true;
  std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
  const char shard = static_cast<char>(region);
  std::vector<Row> kept;
  size_t since_check = 0;
  for (const ScanRange& range : ranges) {
    std::string start(1, shard);
    start += range.start;
    std::string end;
    if (!range.end.empty()) {
      end.assign(1, shard);
      end += range.end;
    }
    for (iter->Seek(Slice(start)); iter->Valid(); iter->Next()) {
      const Slice key = iter->key();
      // An unbounded range needs no end check: a replica database holds
      // exactly one shard, so every key of this region matches.
      if (!end.empty() && key.compare(Slice(end)) >= 0) break;
      if (control != nullptr && ++since_check >= kControlCheckInterval) {
        since_check = 0;
        Status stop = control->Check();
        if (!stop.ok()) return stop;
      }
      if (filter == nullptr || filter->Keep(key, iter->value())) {
        if (control != nullptr && !control->ChargeCandidates(1)) {
          return control->Check();  // Busy: candidate budget exhausted
        }
        kept.push_back(Row{key.ToString(), iter->value().ToString()});
        if (limit != 0 && kept.size() >= limit) break;
      }
    }
    if (!iter->status().ok()) return iter->status();
    if (limit != 0 && kept.size() >= limit) break;
  }
  *rows = std::move(kept);
  return Status::OK();
}

std::vector<int> RegionStore::ReplicaScanOrder(size_t region) {
  std::lock_guard<std::mutex> lock(health_mu_);
  const uint64_t scan_number = ++scans_started_[region];
  std::vector<int> healthy;
  std::vector<int> demoted;
  for (int r = 0; r < options_.replication_factor; ++r) {
    const ReplicaHealth& rh = health_[region].replicas[r];
    if (rh.offline) continue;
    (rh.demoted ? demoted : healthy).push_back(r);
  }
  const bool probe_due = options_.replica_probe_interval > 0 &&
                         scan_number % options_.replica_probe_interval == 0;
  std::vector<int> order;
  if (probe_due) {
    // Piggybacked probe: try the demoted replicas first this scan; a
    // success reinstates them, a failure costs one extra failover.
    order = demoted;
    order.insert(order.end(), healthy.begin(), healthy.end());
  } else {
    order = healthy;
    order.insert(order.end(), demoted.begin(), demoted.end());
  }
  if (order.empty()) {
    // Everything offline (scrub rebuilding the last replica): fall
    // through to the replica table, which reports the offline fault.
    for (int r = 0; r < options_.replication_factor; ++r) order.push_back(r);
  }
  return order;
}

Status RegionStore::ScanInternal(const std::vector<ScanRange>& ranges,
                                 const ScanFilter* filter, size_t limit,
                                 std::vector<Row>* out, ScanReport* report,
                                 const QueryContext* control) {
  if (report != nullptr) *report = ScanReport{};
  if (ranges.empty()) return Status::OK();
  const size_t n = replicas_.size();
  std::vector<std::vector<Row>> per_region(n);
  std::vector<Status> statuses(n);
  std::vector<char> attempted(n, 0);
  std::vector<int> served(n, -1);
  std::vector<uint32_t> failovers(n, 0);
  // Cache/readahead deltas per region (each region is scanned by one
  // worker, so plain slots suffice — same pattern as `failovers`).
  struct RegionIo {
    uint64_t hits = 0, misses = 0, fills = 0;
    uint64_t ra_reads = 0, ra_bytes = 0;
  };
  std::vector<RegionIo> region_io(n);
  std::atomic<uint64_t> retries{0};

  const int attempts = 1 + std::max(0, options_.max_scan_retries);
  auto scan_region = [&](size_t region) {
    attempted[region] = 1;
    Status last;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        // A query stop between attempts ends the retrying, but the
        // *fault* outcome stands — a full replica pass already failed —
        // so degraded mode may still skip this region; sleeping past
        // the deadline is pointless, so the backoff is clamped to it.
        if (control != nullptr && control->ShouldStop()) break;
        retries.fetch_add(1, std::memory_order_relaxed);
        retry_policy_.SleepBeforeRetry(
            attempt, control != nullptr
                         ? std::max(control->RemainingMillis(), 0.0)
                         : -1.0);
      }
      const std::vector<int> order = ReplicaScanOrder(region);
      bool pass_complete = true;
      for (size_t oi = 0; oi < order.size(); ++oi) {
        if (oi > 0) {
          // Failing over, not retrying: the switch is free of backoff
          // but still polled against the query stop.
          if (control != nullptr && control->ShouldStop()) {
            if (attempt == 0) {
              // Stop before any full pass could prove the region down
              // (replicas untried): the stop — not a fault — is the
              // region's outcome.
              statuses[region] = control->Check();
              RecordFailovers(region, failovers[region]);
              return;
            }
            // An earlier full pass already faulted on every replica;
            // the stop only ends the failing-over and the fault
            // outcome stands, so degraded mode may still skip the
            // region (PR-2 composition at any replication factor).
            pass_complete = false;
            break;
          }
          ++failovers[region];
        }
        const int replica = order[oi];
        std::shared_ptr<DB> db = Replica(region, replica);
        if (db != nullptr) {
          const IoStats::Snapshot before = db->io_stats().Read();
          last = ScanReplicaOnce(db.get(), region, ranges, filter, limit,
                                 control, &per_region[region]);
          const IoStats::Snapshot after = db->io_stats().Read();
          region_io[region].hits += after.cache_hits - before.cache_hits;
          region_io[region].misses += after.cache_misses - before.cache_misses;
          region_io[region].fills += after.cache_fills - before.cache_fills;
          region_io[region].ra_reads +=
              after.readahead_reads - before.readahead_reads;
          region_io[region].ra_bytes +=
              after.readahead_bytes_read - before.readahead_bytes_read;
        } else {
          last = OfflineStatus();
        }
        if (last.ok()) {
          served[region] = replica;
          RecordSuccess(region, replica);
          RecordFailovers(region, failovers[region]);
          return;
        }
        if (last.IsQueryStop()) {
          // Caller-attributed stop, not a region fault: no retry, no
          // health bookkeeping, no region attribution.
          statuses[region] = last;
          RecordFailovers(region, failovers[region]);
          return;
        }
        RecordReplicaFailure(region, replica, last);
      }
      if (!pass_complete) break;  // interrupted pass: not a new attempt
      // Every replica of the region faulted: that is one failed
      // region-level attempt, eligible for retry with backoff.
      RecordFailure(region, last);
    }
    RecordFailovers(region, failovers[region]);
    // Attribute the failure to its region (shard == region index).
    statuses[region] =
        last.WithContext("region " + std::to_string(region));
  };
  if (control != nullptr) {
    // Early-exit fan-out: regions not yet started when the query stops
    // are never scanned (their statuses stay OK with no rows, and the
    // stop status below fails the whole scan anyway).
    pool_->ParallelFor(n, scan_region,
                       [control] { return control->ShouldStop(); });
  } else {
    pool_->ParallelFor(n, scan_region);
  }

  uint64_t total_failovers = 0;
  for (size_t region = 0; region < n; ++region) {
    total_failovers += failovers[region];
  }
  store_stats_.replica_failovers.fetch_add(total_failovers,
                                           std::memory_order_relaxed);

  Status failure;
  Status query_stop;
  for (size_t region = 0; region < n; ++region) {
    if (statuses[region].ok()) continue;
    if (statuses[region].IsQueryStop()) {
      // Never degraded-skipped: a timed-out/cancelled scan is not a
      // partial-but-complete-per-region answer, it is an aborted query.
      if (query_stop.ok()) query_stop = statuses[region];
      continue;
    }
    if (options_.degraded_scans) {
      RecordSkip(region);
      if (report != nullptr) {
        report->skipped.push_back(SkippedRegion{
            static_cast<int>(region), statuses[region].ToString()});
      }
    } else if (failure.ok()) {
      failure = statuses[region];
    }
  }
  if (report != nullptr) {
    report->retries = retries.load(std::memory_order_relaxed);
    report->failovers = total_failovers;
    report->regions.resize(n);
    for (size_t region = 0; region < n; ++region) {
      report->regions[region].served_replica = served[region];
      report->regions[region].failovers = failovers[region];
      report->cache_hits += region_io[region].hits;
      report->cache_misses += region_io[region].misses;
      report->cache_fills += region_io[region].fills;
      report->readahead_reads += region_io[region].ra_reads;
      report->readahead_bytes_read += region_io[region].ra_bytes;
    }
  }
  if (!query_stop.ok()) return query_stop;
  if (!failure.ok()) return failure;
  // The fan-out may also have stopped before some regions even started
  // (skipped by the cancellation-aware ParallelFor, statuses left OK);
  // surface that as the stop status rather than a silently short result.
  // A scan whose every region completed stays OK even if the deadline
  // expired at the tail — partial-result policy belongs to the caller.
  for (size_t region = 0; region < n; ++region) {
    if (attempted[region]) continue;
    Status stop =
        control != nullptr ? control->Check() : Status::OK();
    return stop.ok()
               ? Status::Cancelled("scan aborted before reaching region " +
                                   std::to_string(region))
               : stop;
  }
  for (size_t region = 0; region < n; ++region) {
    if (!statuses[region].ok()) continue;  // degraded: skip failed region
    for (auto& row : per_region[region]) {
      out->push_back(std::move(row));
    }
  }
  return Status::OK();
}

void RegionStore::RecordFailure(size_t region, const Status& s) {
  std::lock_guard<std::mutex> lock(health_mu_);
  RegionHealth& health = health_[region];
  ++health.failed_attempts;
  ++health.consecutive_failures;
  health.last_error = s.ToString();
}

void RegionStore::RecordSuccess(size_t region, int replica) {
  std::lock_guard<std::mutex> lock(health_mu_);
  RegionHealth& health = health_[region];
  health.consecutive_failures = 0;
  ReplicaHealth& rh = health.replicas[replica];
  rh.consecutive_failures = 0;
  rh.demoted = false;  // a successful scan (or probe) reinstates
}

void RegionStore::RecordSkip(size_t region) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ++health_[region].skipped_scans;
}

void RegionStore::RecordReplicaFailure(size_t region, int replica,
                                       const Status& s) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ReplicaHealth& rh = health_[region].replicas[replica];
  ++rh.failed_attempts;
  ++rh.consecutive_failures;
  rh.last_error = s.ToString();
  if (options_.replica_demote_threshold > 0 &&
      rh.consecutive_failures >=
          static_cast<uint64_t>(options_.replica_demote_threshold)) {
    rh.demoted = true;
  }
}

void RegionStore::RecordFailovers(size_t region, uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(health_mu_);
  health_[region].failovers += n;
}

void RegionStore::SetReplicaOffline(size_t region, int replica,
                                    bool offline) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ReplicaHealth& rh = health_[region].replicas[replica];
  rh.offline = offline;
  if (!offline) {
    rh.demoted = false;
    rh.consecutive_failures = 0;
    ++rh.rebuilds;
  }
}

void RegionStore::FillLiveReplicaState(size_t region,
                                       RegionHealth* health) const {
  for (int r = 0; r < options_.replication_factor &&
                  r < static_cast<int>(health->replicas.size());
       ++r) {
    std::shared_ptr<DB> db = Replica(region, r);
    if (db == nullptr) continue;  // offline: read-only state is moot
    ReplicaHealth& rh = health->replicas[r];
    rh.read_only = db->read_only();
    if (rh.read_only) rh.background_error = db->background_error().ToString();
  }
}

RegionHealth RegionStore::Health(int region) const {
  RegionHealth copy;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    copy = health_.at(region);
  }
  // Live replica state is read after the counter copy, one lock at a
  // time (health_mu_ and replicas_mu_ are never held together).
  FillLiveReplicaState(static_cast<size_t>(region), &copy);
  return copy;
}

std::vector<RegionHealth> RegionStore::HealthSnapshot() const {
  std::vector<RegionHealth> copy;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    copy = health_;
  }
  for (size_t region = 0; region < copy.size(); ++region) {
    FillLiveReplicaState(region, &copy[region]);
  }
  return copy;
}

Status RegionStore::Resume() {
  Status first_failure;
  for (size_t region = 0; region < replicas_.size(); ++region) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(region, r);
      if (db == nullptr || !db->read_only()) continue;
      // Probe under the shared retry policy: a resume that fails because
      // the disk is *still* full is retryable, one that fails on a
      // structural error is not.
      Status s = retry_policy_.Run([&db] { return db->Resume(); });
      if (s.ok()) {
        // Writable again: clear the write-failure demotion so the
        // replica returns to the preferred scan order. Divergence
        // accumulated while read-only is ScrubReplicas' job.
        std::lock_guard<std::mutex> lock(health_mu_);
        ReplicaHealth& rh = health_[region].replicas[r];
        rh.demoted = false;
        rh.consecutive_failures = 0;
      } else if (first_failure.ok()) {
        first_failure =
            s.WithContext("region " + std::to_string(region) + " replica " +
                          std::to_string(r));
      }
    }
  }
  return first_failure;
}

bool RegionStore::WritesDegraded(int min_acks) const {
  const int factor = options_.replication_factor;
  const int required = min_acks <= 0 ? factor : std::min(min_acks, factor);
  for (size_t region = 0; region < replicas_.size(); ++region) {
    int writable = 0;
    for (int r = 0; r < factor; ++r) {
      std::shared_ptr<DB> db = Replica(region, r);
      if (db != nullptr && !db->read_only()) ++writable;
    }
    if (writable < required) return true;
  }
  return false;
}

uint64_t RegionStore::ReadOnlyReplicas() const {
  uint64_t wedged = 0;
  for (size_t region = 0; region < replicas_.size(); ++region) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(region, r);
      if (db != nullptr && db->read_only()) ++wedged;
    }
  }
  return wedged;
}

Status RegionStore::FirstBackgroundError() const {
  for (size_t region = 0; region < replicas_.size(); ++region) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(region, r);
      if (db == nullptr) continue;
      Status s = db->background_error();
      if (!s.ok()) {
        return s.WithContext("region " + std::to_string(region) +
                             " replica " + std::to_string(r));
      }
    }
  }
  return Status::OK();
}

Status RegionStore::Flush() {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(i, r);
      if (db == nullptr) continue;  // offline for rebuild
      Status s = db->Flush();
      if (!s.ok()) {
        return s.WithContext("region " + std::to_string(i) + " replica " +
                             std::to_string(r));
      }
    }
  }
  return Status::OK();
}

Status RegionStore::VerifyIntegrity() {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(i, r);
      if (db == nullptr) continue;  // offline for rebuild
      Status s = db->VerifyIntegrity();
      if (!s.ok()) {
        return s.WithContext("region " + std::to_string(i) + " replica " +
                             std::to_string(r));
      }
    }
  }
  return Status::OK();
}

Status RegionStore::FingerprintReplica(DB* db, Fingerprint* fp) {
  *fp = Fingerprint{};
  ReadOptions read_options;
  read_options.verify_checksums = true;
  read_options.fill_cache = false;  // a scrub must not evict hot blocks
  std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
  uint32_t crc = 0;
  uint64_t rows = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    const Slice key = iter->key();
    const Slice value = iter->value();
    // Length-framed so (k="ab", v="c") never collides with (k="a",
    // v="bc"); iteration order is bytewise-sorted, hence deterministic
    // and comparable across replicas.
    std::string frame;
    PutFixed32(&frame, static_cast<uint32_t>(key.size()));
    PutFixed32(&frame, static_cast<uint32_t>(value.size()));
    crc = crc32c::Extend(crc, frame.data(), frame.size());
    crc = crc32c::Extend(crc, key.data(), key.size());
    crc = crc32c::Extend(crc, value.data(), value.size());
    ++rows;
  }
  if (!iter->status().ok()) return iter->status();
  fp->crc = crc;
  fp->rows = rows;
  return Status::OK();
}

Status RegionStore::RebuildReplica(size_t region, int replica,
                                   const std::shared_ptr<DB>& source,
                                   ScrubReport* report) {
  SetReplicaOffline(region, replica, true);
  std::shared_ptr<DB> old;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    old = std::move(replicas_[region][replica]);
    replicas_[region][replica] = nullptr;
  }
  // Wait for in-flight scans holding the old database to drain, then
  // destroy it *before* touching its directory (the destructor's
  // best-effort flush must land in the old tree, not the rebuilt one).
  // Once the table entry is null no new reference can appear, so a
  // use_count of 1 is stable.
  while (old.use_count() > 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  old.reset();

  // Quarantine the old tree (PR-1 `.bad` idiom) rather than deleting it:
  // a scrub bug should never be able to destroy the last copy of data.
  const std::string dir = ReplicaPath(region, replica);
  const std::string quarantine = dir + ".bad";
  if (env_->FileExists(dir)) {
    (void)env_->RemoveDirRecursively(quarantine);
    Status s = env_->RenameFile(dir, quarantine);
    if (!s.ok()) {
      return s.WithContext("quarantining region " + std::to_string(region) +
                           " replica " + std::to_string(replica));
    }
  }

  std::unique_ptr<DB> fresh;
  Status s = DB::Open(options_.db_options, dir, &fresh);
  if (s.ok()) {
    ReadOptions read_options;
    read_options.verify_checksums = true;
    read_options.fill_cache = false;
    std::unique_ptr<Iterator> iter(source->NewIterator(read_options));
    for (iter->SeekToFirst(); s.ok() && iter->Valid(); iter->Next()) {
      s = fresh->Put(WriteOptions(), iter->key(), iter->value());
      if (s.ok() && report != nullptr) ++report->rows_copied;
    }
    if (s.ok()) s = iter->status();
    if (s.ok()) s = fresh->Flush();
  }
  if (!s.ok()) {
    // The replica stays offline (scans keep failing over past it); the
    // next scrub pass will try again.
    return s.WithContext("rebuilding region " + std::to_string(region) +
                         " replica " + std::to_string(replica));
  }
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    replicas_[region][replica] = std::move(fresh);
  }
  SetReplicaOffline(region, replica, false);  // reinstated
  store_stats_.replicas_rebuilt.fetch_add(1, std::memory_order_relaxed);
  if (report != nullptr) ++report->replicas_rebuilt;
  return Status::OK();
}

Status RegionStore::ScrubReplicas(ScrubReport* report) {
  if (report != nullptr) *report = ScrubReport{};
  store_stats_.scrub_rounds.fetch_add(1, std::memory_order_relaxed);
  Status first_error;
  for (size_t region = 0; region < replicas_.size(); ++region) {
    if (report != nullptr) ++report->regions_checked;
    const int factor = options_.replication_factor;
    std::vector<std::shared_ptr<DB>> dbs(factor);
    std::vector<Fingerprint> fps(factor);
    std::vector<bool> clean(factor, false);
    for (int r = 0; r < factor; ++r) {
      dbs[r] = Replica(region, r);
      if (dbs[r] == nullptr) continue;  // still offline from a prior pass
      Status s = FingerprintReplica(dbs[r].get(), &fps[r]);
      // The fingerprint walk only touches live rows; the integrity walk
      // additionally covers every referenced table file end to end.
      if (s.ok()) s = dbs[r]->VerifyIntegrity();
      if (s.ok()) {
        clean[r] = true;
      } else if (report != nullptr) {
        ++report->corrupt_replicas;
      }
    }
    // Source of truth: the clean replica with the most rows (divergence
    // here means lost or unflushed writes, so "more rows" is "more
    // complete"); ties break to the lowest index.
    int source = -1;
    for (int r = 0; r < factor; ++r) {
      if (!clean[r]) continue;
      if (source == -1 || fps[r].rows > fps[source].rows) source = r;
    }
    if (source == -1) {
      if (first_error.ok()) {
        first_error = Status::Corruption(
            "all replicas corrupt, nothing to rebuild from")
                          .WithContext("region " + std::to_string(region));
      }
      continue;
    }
    for (int r = 0; r < factor; ++r) {
      if (r == source) continue;
      const bool divergent = clean[r] && !(fps[r] == fps[source]);
      if (clean[r] && !divergent) continue;
      if (divergent && report != nullptr) ++report->divergent_replicas;
      // Release our own snapshot of the bad replica first: the rebuild
      // waits for every outstanding reference to drain before touching
      // the directory, and ours would deadlock it.
      dbs[r].reset();
      Status s = RebuildReplica(region, r, dbs[source], report);
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

IoStats::Snapshot RegionStore::TotalIoStats() const {
  IoStats::Snapshot total = store_stats_.Read();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(i, r);
      if (db == nullptr) continue;
      const IoStats::Snapshot s = db->io_stats().Read();
      total.blocks_read += s.blocks_read;
      total.block_bytes_read += s.block_bytes_read;
      total.cache_hits += s.cache_hits;
      total.cache_misses += s.cache_misses;
      total.cache_fills += s.cache_fills;
      total.readahead_reads += s.readahead_reads;
      total.readahead_bytes_read += s.readahead_bytes_read;
      total.rows_scanned += s.rows_scanned;
      total.bloom_skips += s.bloom_skips;
      total.point_gets += s.point_gets;
      total.range_scans += s.range_scans;
      total.checksum_verifications += s.checksum_verifications;
      total.corruptions_detected += s.corruptions_detected;
      total.background_errors += s.background_errors;
      total.write_stalls += s.write_stalls;
      total.stall_ms += s.stall_ms;
      total.resume_attempts += s.resume_attempts;
      if (db->read_only()) ++total.read_only_replicas;
      // batch_commits/batch_rows/degraded_writes are store-level counters
      // (like the failover/scrub ones in store_stats_), not per-replica.
    }
  }
  return total;
}

void RegionStore::ResetIoStats() {
  store_stats_.Reset();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(i, r);
      if (db != nullptr) db->mutable_io_stats()->Reset();
    }
  }
}

uint64_t RegionStore::TotalTableBytes() const {
  uint64_t total = 0;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    for (int r = 0; r < options_.replication_factor; ++r) {
      std::shared_ptr<DB> db = Replica(i, r);
      if (db != nullptr) total += db->TotalTableBytes();
    }
  }
  return total;
}

}  // namespace kv
}  // namespace trass
