#include "kv/region_store.h"

#include <mutex>

namespace trass {
namespace kv {

RegionStore::RegionStore(const RegionOptions& options, std::string path)
    : options_(options), path_(std::move(path)) {}

Status RegionStore::Open(const RegionOptions& options, const std::string& path,
                         std::unique_ptr<RegionStore>* store) {
  store->reset();
  if (options.num_regions < 1 || options.num_regions > 256) {
    return Status::InvalidArgument("num_regions must be in [1, 256]");
  }
  Env* env = options.db_options.env != nullptr ? options.db_options.env
                                               : Env::Default();
  Status s = env->CreateDir(path);
  if (!s.ok()) return s;
  std::unique_ptr<RegionStore> impl(new RegionStore(options, path));
  impl->regions_.resize(options.num_regions);
  for (int i = 0; i < options.num_regions; ++i) {
    const std::string region_path = path + "/region-" + std::to_string(i);
    s = DB::Open(options.db_options, region_path, &impl->regions_[i]);
    if (!s.ok()) return s;
  }
  impl->pool_ = std::make_unique<ThreadPool>(options.scan_threads);
  *store = std::move(impl);
  return Status::OK();
}

namespace {

Status CheckKey(const Slice& key, int num_regions) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  const int shard = static_cast<unsigned char>(key[0]);
  if (shard >= num_regions) {
    return Status::InvalidArgument("shard byte out of range");
  }
  return Status::OK();
}

}  // namespace

Status RegionStore::Put(const WriteOptions& options, const Slice& key,
                        const Slice& value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  return regions_[static_cast<unsigned char>(key[0])]->Put(options, key,
                                                           value);
}

Status RegionStore::Delete(const WriteOptions& options, const Slice& key) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  return regions_[static_cast<unsigned char>(key[0])]->Delete(options, key);
}

Status RegionStore::Get(const ReadOptions& options, const Slice& key,
                        std::string* value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  return regions_[static_cast<unsigned char>(key[0])]->Get(options, key,
                                                           value);
}

Status RegionStore::Scan(const std::vector<ScanRange>& ranges,
                         const ScanFilter* filter, std::vector<Row>* out) {
  return ScanInternal(ranges, filter, /*limit=*/0, out);
}

Status RegionStore::ScanWithLimit(const std::vector<ScanRange>& ranges,
                                  const ScanFilter* filter, size_t limit,
                                  std::vector<Row>* out) {
  return ScanInternal(ranges, filter, limit, out);
}

Status RegionStore::ScanInternal(const std::vector<ScanRange>& ranges,
                                 const ScanFilter* filter, size_t limit,
                                 std::vector<Row>* out) {
  if (ranges.empty()) return Status::OK();
  const size_t n = regions_.size();
  std::vector<std::vector<Row>> per_region(n);
  std::vector<Status> statuses(n);

  pool_->ParallelFor(n, [&](size_t region) {
    DB* db = regions_[region].get();
    ReadOptions read_options;
    std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
    const char shard = static_cast<char>(region);
    std::vector<Row>& rows = per_region[region];
    for (const ScanRange& range : ranges) {
      std::string start(1, shard);
      start += range.start;
      std::string end;
      if (!range.end.empty()) {
        end.assign(1, shard);
        end += range.end;
      }
      for (iter->Seek(Slice(start)); iter->Valid(); iter->Next()) {
        const Slice key = iter->key();
        if (!end.empty()) {
          if (key.compare(Slice(end)) >= 0) break;
        } else {
          // Unbounded range still must not leak into... there is only one
          // shard per region database, so any key of this region matches.
        }
        if (filter == nullptr || filter->Keep(key, iter->value())) {
          rows.push_back(Row{key.ToString(), iter->value().ToString()});
          if (limit != 0 && rows.size() >= limit) break;
        }
      }
      if (!iter->status().ok()) {
        statuses[region] = iter->status();
        return;
      }
      if (limit != 0 && rows.size() >= limit) break;
    }
  });

  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  for (auto& rows : per_region) {
    for (auto& row : rows) {
      out->push_back(std::move(row));
    }
  }
  return Status::OK();
}

Status RegionStore::Flush() {
  for (auto& region : regions_) {
    Status s = region->Flush();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

IoStats::Snapshot RegionStore::TotalIoStats() const {
  IoStats::Snapshot total{};
  for (const auto& region : regions_) {
    const IoStats::Snapshot s = region->io_stats().Read();
    total.blocks_read += s.blocks_read;
    total.block_bytes_read += s.block_bytes_read;
    total.cache_hits += s.cache_hits;
    total.rows_scanned += s.rows_scanned;
    total.bloom_skips += s.bloom_skips;
    total.point_gets += s.point_gets;
    total.range_scans += s.range_scans;
  }
  return total;
}

void RegionStore::ResetIoStats() {
  for (auto& region : regions_) {
    region->mutable_io_stats()->Reset();
  }
}

uint64_t RegionStore::TotalTableBytes() const {
  uint64_t total = 0;
  for (const auto& region : regions_) {
    total += region->TotalTableBytes();
  }
  return total;
}

}  // namespace kv
}  // namespace trass
