#include "kv/region_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

namespace trass {
namespace kv {

RegionStore::RegionStore(const RegionOptions& options, std::string path)
    : options_(options), path_(std::move(path)) {}

Status RegionStore::Open(const RegionOptions& options, const std::string& path,
                         std::unique_ptr<RegionStore>* store) {
  store->reset();
  if (options.num_regions < 1 || options.num_regions > 256) {
    return Status::InvalidArgument("num_regions must be in [1, 256]");
  }
  Env* env = options.db_options.env != nullptr ? options.db_options.env
                                               : Env::Default();
  Status s = env->CreateDir(path);
  if (!s.ok()) return s;
  std::unique_ptr<RegionStore> impl(new RegionStore(options, path));
  impl->regions_.resize(options.num_regions);
  impl->health_.resize(options.num_regions);
  for (int i = 0; i < options.num_regions; ++i) {
    const std::string region_path = path + "/region-" + std::to_string(i);
    s = DB::Open(options.db_options, region_path, &impl->regions_[i]);
    if (!s.ok()) return s.WithContext("region " + std::to_string(i));
  }
  impl->pool_ = std::make_unique<ThreadPool>(options.scan_threads);
  *store = std::move(impl);
  return Status::OK();
}

namespace {

Status CheckKey(const Slice& key, int num_regions) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  const int shard = static_cast<unsigned char>(key[0]);
  if (shard >= num_regions) {
    return Status::InvalidArgument("shard byte out of range");
  }
  return Status::OK();
}

}  // namespace

Status RegionStore::Put(const WriteOptions& options, const Slice& key,
                        const Slice& value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  return regions_[static_cast<unsigned char>(key[0])]->Put(options, key,
                                                           value);
}

Status RegionStore::Delete(const WriteOptions& options, const Slice& key) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  return regions_[static_cast<unsigned char>(key[0])]->Delete(options, key);
}

Status RegionStore::Get(const ReadOptions& options, const Slice& key,
                        std::string* value) {
  Status s = CheckKey(key, num_regions());
  if (!s.ok()) return s;
  ReadOptions read_options = options;
  read_options.verify_checksums = true;
  const int shard = static_cast<unsigned char>(key[0]);
  return regions_[shard]
      ->Get(read_options, key, value)
      .WithContext("region " + std::to_string(shard));
}

Status RegionStore::Scan(const std::vector<ScanRange>& ranges,
                         const ScanFilter* filter, std::vector<Row>* out,
                         ScanReport* report, const QueryContext* control) {
  return ScanInternal(ranges, filter, /*limit=*/0, out, report, control);
}

Status RegionStore::ScanWithLimit(const std::vector<ScanRange>& ranges,
                                  const ScanFilter* filter, size_t limit,
                                  std::vector<Row>* out, ScanReport* report,
                                  const QueryContext* control) {
  return ScanInternal(ranges, filter, limit, out, report, control);
}

Status RegionStore::ScanRegionOnce(size_t region,
                                   const std::vector<ScanRange>& ranges,
                                   const ScanFilter* filter, size_t limit,
                                   const QueryContext* control,
                                   std::vector<Row>* rows) {
  DB* db = regions_[region].get();
  ReadOptions read_options;
  read_options.verify_checksums = true;
  std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
  const char shard = static_cast<char>(region);
  std::vector<Row> kept;
  size_t since_check = 0;
  for (const ScanRange& range : ranges) {
    std::string start(1, shard);
    start += range.start;
    std::string end;
    if (!range.end.empty()) {
      end.assign(1, shard);
      end += range.end;
    }
    for (iter->Seek(Slice(start)); iter->Valid(); iter->Next()) {
      const Slice key = iter->key();
      // An unbounded range needs no end check: a region database holds
      // exactly one shard, so every key of this region matches.
      if (!end.empty() && key.compare(Slice(end)) >= 0) break;
      if (control != nullptr && ++since_check >= kControlCheckInterval) {
        since_check = 0;
        Status stop = control->Check();
        if (!stop.ok()) return stop;
      }
      if (filter == nullptr || filter->Keep(key, iter->value())) {
        if (control != nullptr && !control->ChargeCandidates(1)) {
          return control->Check();  // Busy: candidate budget exhausted
        }
        kept.push_back(Row{key.ToString(), iter->value().ToString()});
        if (limit != 0 && kept.size() >= limit) break;
      }
    }
    if (!iter->status().ok()) return iter->status();
    if (limit != 0 && kept.size() >= limit) break;
  }
  *rows = std::move(kept);
  return Status::OK();
}

Status RegionStore::ScanInternal(const std::vector<ScanRange>& ranges,
                                 const ScanFilter* filter, size_t limit,
                                 std::vector<Row>* out, ScanReport* report,
                                 const QueryContext* control) {
  if (report != nullptr) *report = ScanReport{};
  if (ranges.empty()) return Status::OK();
  const size_t n = regions_.size();
  std::vector<std::vector<Row>> per_region(n);
  std::vector<Status> statuses(n);
  std::vector<char> attempted(n, 0);
  std::atomic<uint64_t> retries{0};

  const int attempts = 1 + std::max(0, options_.max_scan_retries);
  auto scan_region = [&](size_t region) {
    attempted[region] = 1;
    Status last;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        // A query stop ends the retrying, but the *fault* outcome stands
        // (degraded mode may still skip this region); sleeping past the
        // deadline is pointless, so the backoff is clamped to it.
        if (control != nullptr && control->ShouldStop()) break;
        retries.fetch_add(1, std::memory_order_relaxed);
        uint64_t backoff_ms = options_.retry_backoff_ms
                              << std::min(attempt - 1, 20);
        backoff_ms = std::min(backoff_ms, options_.max_retry_backoff_ms);
        if (control != nullptr) {
          const double remaining = control->RemainingMillis();
          if (remaining < static_cast<double>(backoff_ms)) {
            // Round up: waking a fraction of a millisecond *before* the
            // deadline would only buy one more doomed attempt.
            backoff_ms =
                static_cast<uint64_t>(std::ceil(std::max(remaining, 0.0)));
          }
        }
        if (backoff_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        }
      }
      last = ScanRegionOnce(region, ranges, filter, limit, control,
                            &per_region[region]);
      if (last.ok()) {
        RecordSuccess(region);
        return;
      }
      if (last.IsQueryStop()) {
        // Caller-attributed stop, not a region fault: no retry, no
        // health bookkeeping, no region attribution.
        statuses[region] = last;
        return;
      }
      RecordFailure(region, last);
    }
    // Attribute the failure to its region (shard == region index).
    statuses[region] =
        last.WithContext("region " + std::to_string(region));
  };
  if (control != nullptr) {
    // Early-exit fan-out: regions not yet started when the query stops
    // are never scanned (their statuses stay OK with no rows, and the
    // stop status below fails the whole scan anyway).
    pool_->ParallelFor(n, scan_region,
                       [control] { return control->ShouldStop(); });
  } else {
    pool_->ParallelFor(n, scan_region);
  }

  Status failure;
  Status query_stop;
  for (size_t region = 0; region < n; ++region) {
    if (statuses[region].ok()) continue;
    if (statuses[region].IsQueryStop()) {
      // Never degraded-skipped: a timed-out/cancelled scan is not a
      // partial-but-complete-per-region answer, it is an aborted query.
      if (query_stop.ok()) query_stop = statuses[region];
      continue;
    }
    if (options_.degraded_scans) {
      RecordSkip(region);
      if (report != nullptr) {
        report->skipped.push_back(SkippedRegion{
            static_cast<int>(region), statuses[region].ToString()});
      }
    } else if (failure.ok()) {
      failure = statuses[region];
    }
  }
  if (report != nullptr) {
    report->retries = retries.load(std::memory_order_relaxed);
  }
  if (!query_stop.ok()) return query_stop;
  if (!failure.ok()) return failure;
  // The fan-out may also have stopped before some regions even started
  // (skipped by the cancellation-aware ParallelFor, statuses left OK);
  // surface that as the stop status rather than a silently short result.
  // A scan whose every region completed stays OK even if the deadline
  // expired at the tail — partial-result policy belongs to the caller.
  for (size_t region = 0; region < n; ++region) {
    if (attempted[region]) continue;
    Status stop =
        control != nullptr ? control->Check() : Status::OK();
    return stop.ok()
               ? Status::Cancelled("scan aborted before reaching region " +
                                   std::to_string(region))
               : stop;
  }
  for (size_t region = 0; region < n; ++region) {
    if (!statuses[region].ok()) continue;  // degraded: skip failed region
    for (auto& row : per_region[region]) {
      out->push_back(std::move(row));
    }
  }
  return Status::OK();
}

void RegionStore::RecordFailure(size_t region, const Status& s) {
  std::lock_guard<std::mutex> lock(health_mu_);
  RegionHealth& health = health_[region];
  ++health.failed_attempts;
  ++health.consecutive_failures;
  health.last_error = s.ToString();
}

void RegionStore::RecordSuccess(size_t region) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_[region].consecutive_failures = 0;
}

void RegionStore::RecordSkip(size_t region) {
  std::lock_guard<std::mutex> lock(health_mu_);
  ++health_[region].skipped_scans;
}

RegionHealth RegionStore::Health(int region) const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_.at(region);
}

Status RegionStore::Flush() {
  for (size_t i = 0; i < regions_.size(); ++i) {
    Status s = regions_[i]->Flush();
    if (!s.ok()) return s.WithContext("region " + std::to_string(i));
  }
  return Status::OK();
}

Status RegionStore::VerifyIntegrity() {
  for (size_t i = 0; i < regions_.size(); ++i) {
    Status s = regions_[i]->VerifyIntegrity();
    if (!s.ok()) return s.WithContext("region " + std::to_string(i));
  }
  return Status::OK();
}

IoStats::Snapshot RegionStore::TotalIoStats() const {
  IoStats::Snapshot total{};
  for (const auto& region : regions_) {
    const IoStats::Snapshot s = region->io_stats().Read();
    total.blocks_read += s.blocks_read;
    total.block_bytes_read += s.block_bytes_read;
    total.cache_hits += s.cache_hits;
    total.rows_scanned += s.rows_scanned;
    total.bloom_skips += s.bloom_skips;
    total.point_gets += s.point_gets;
    total.range_scans += s.range_scans;
    total.checksum_verifications += s.checksum_verifications;
    total.corruptions_detected += s.corruptions_detected;
  }
  return total;
}

void RegionStore::ResetIoStats() {
  for (auto& region : regions_) {
    region->mutable_io_stats()->Reset();
  }
}

uint64_t RegionStore::TotalTableBytes() const {
  uint64_t total = 0;
  for (const auto& region : regions_) {
    total += region->TotalTableBytes();
  }
  return total;
}

}  // namespace kv
}  // namespace trass
