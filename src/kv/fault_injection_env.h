// FaultInjectionEnv: an Env wrapper that simulates storage failures for
// the crash/corruption test matrix.
//
// Two failure families are modeled:
//
//  * Crashes. The wrapper tracks, per file, how many bytes were covered
//    by the last successful Sync(). DropUnsyncedData() then reverts the
//    directory to what a power loss would leave behind: every tracked
//    file is truncated back to its synced prefix, and files that were
//    never synced are removed. SetFilesystemActive(false) makes all
//    mutations fail, so a DB torn down "mid-crash" cannot mask the
//    damage with its destructor flush.
//
//  * I/O errors. InjectFault() arms a fault point matched by operation
//    kind and (optionally) a path substring; a fault fires after an
//    operation countdown or with a given probability, once (transient)
//    or on every subsequent match (permanent). A fault point's FaultKind
//    selects the failure shape: a plain IoError, a clean ENOSPC
//    rejection, or a short write that lands a prefix of the data before
//    failing (the realistic ENOSPC shape — it leaves a torn WAL tail).
//
//  * Disk exhaustion. SetDiskSpaceBudget() arms a byte-budget space
//    accountant: every append through this env consumes budget, and
//    removing tracked files credits it back (so compactions reclaim
//    space). An append that does not fit writes the prefix that does and
//    fails with Status::NoSpace. GetFreeDiskSpace() reports the
//    remaining budget, which the DB's soft/hard space watermarks read.
//
// The model is: synced bytes survive a crash, renames survive a crash,
// unsynced bytes and never-synced files do not. Directory-entry fsync is
// not modeled separately (see DESIGN.md "Failure model & recovery").

#ifndef TRASS_KV_FAULT_INJECTION_ENV_H_
#define TRASS_KV_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kv/env.h"
#include "util/random.h"
#include "util/status.h"

namespace trass {
namespace kv {

/// Operation kinds a fault point can match.
enum class FaultOp {
  kOpenWrite,   // NewWritableFile
  kOpenRead,    // NewRandomAccessFile / NewSequentialFile
  kRead,        // RandomAccessFile::Read / SequentialFile::Read
  kAppend,      // WritableFile::Append
  kSync,        // WritableFile::Sync
  kRename,      // RenameFile
};

/// Failure shape of a fault point.
enum class FaultKind {
  kIoError,     // generic I/O error (default)
  kNoSpace,     // clean ENOSPC: the operation fails, nothing is written
  kShortWrite,  // ENOSPC mid-append: a prefix lands on disk, then failure
};

/// One armed fault. Matches operations of kind `op` whose path contains
/// `path_substring` (empty matches everything). When `probability` is 0
/// the fault fires on the first match after skipping `countdown` matches;
/// otherwise each match fires independently with the given probability.
/// Transient faults disarm after firing once; permanent faults keep
/// firing. `kind` selects the failure shape (kShortWrite only changes
/// behavior for kAppend; elsewhere it degenerates to kNoSpace).
struct FaultPoint {
  FaultOp op;
  FaultKind kind = FaultKind::kIoError;
  int countdown = 0;
  double probability = 0.0;
  bool permanent = false;
  std::string path_substring;
};

class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `target` (not owned); pass Env::Default() for the POSIX env.
  explicit FaultInjectionEnv(Env* target);

  // ---- fault control ----

  void InjectFault(const FaultPoint& fault);
  void ClearFaults();
  /// Number of operations failed by armed fault points so far.
  uint64_t faults_fired() const;

  // ---- disk-space accountant ----

  /// Arms (or resizes) the byte-budget space accountant. Appends through
  /// this env consume budget; removing tracked files credits their bytes
  /// back. An append that exceeds the remaining budget writes the prefix
  /// that fits and fails with Status::NoSpace. Pass kUnlimitedBudget to
  /// disarm. Raising the budget mid-run models freeing disk space.
  static constexpr uint64_t kUnlimitedBudget = UINT64_MAX;
  void SetDiskSpaceBudget(uint64_t bytes);
  /// Bytes currently charged against the budget (sum of tracked appends
  /// minus reclaimed files). Meaningful only while a budget is armed.
  uint64_t disk_space_used() const;

  /// When inactive, every mutating operation fails with IoError without
  /// touching the target filesystem (the post-crash "process is dead"
  /// window). Reads still pass through.
  void SetFilesystemActive(bool active);

  /// Simulates power loss: truncates every tracked file to its synced
  /// prefix and removes tracked files that were never synced. Requires
  /// the filesystem to be inactive or all writers closed; safe either
  /// way because writers fail while inactive.
  Status DropUnsyncedData();

  /// Bytes of `fname` covered by its last successful Sync (0 if never
  /// synced or untracked).
  uint64_t SyncedBytes(const std::string& fname) const;

  /// Forgets sync-state tracking (e.g. between crash trials).
  void ResetState();

  Env* target() const { return target_; }

  /// Returns a non-OK status when an armed fault matches (op, path).
  /// Public so the file wrappers (and tests) can consult it.
  Status CheckFault(FaultOp op, const std::string& path);
  /// Append-specific gate: applies armed kAppend faults and the disk
  /// budget. On failure, *accept holds the prefix length the "disk"
  /// still took (short writes / budget exhaustion) — the file wrapper
  /// lands that prefix before reporting the error, so a failed WAL
  /// append leaves the realistic torn tail.
  Status PreAppend(const std::string& path, size_t data_size,
                   size_t* accept);
  bool writes_allowed() const;

  // ---- Env interface ----

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override;
  Status RemoveDirRecursively(const std::string& dirname) override;
  Status RenameFile(const std::string& src,
                    const std::string& target) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status ReadFileToString(const std::string& fname,
                          std::string* data) override;
  Status WriteStringToFile(const Slice& data, const std::string& fname,
                           bool sync) override;
  Status GetFreeDiskSpace(const std::string& path,
                          uint64_t* bytes) override;

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    uint64_t pos = 0;         // bytes appended so far
    uint64_t synced_pos = 0;  // bytes covered by the last Sync
    bool ever_synced = false;
  };

  // Writer callbacks (serialized on mu_).
  void OnAppend(const std::string& fname, uint64_t bytes);
  void OnSync(const std::string& fname);

  // Fault matching for one operation; requires mu_.
  Status CheckFaultLocked(FaultOp op, const std::string& path);
  // Credits a tracked file's bytes back to the budget; requires mu_.
  void ForgetFileLocked(const std::string& fname);

  Env* const target_;

  mutable std::mutex mu_;
  std::map<std::string, FileState> files_;
  std::vector<FaultPoint> faults_;
  uint64_t faults_fired_ = 0;
  bool active_ = true;
  uint64_t space_budget_ = kUnlimitedBudget;
  uint64_t space_used_ = 0;
  Random rng_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_FAULT_INJECTION_ENV_H_
