#include "kv/bloom.h"

#include <algorithm>
#include <cstring>

namespace trass {
namespace kv {

uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired hash (LevelDB's Hash with a fixed seed).
  constexpr uint32_t kSeed = 0xbc9f1d34;
  constexpr uint32_t kM = 0xc6a4a793;
  const size_t n = key.size();
  const char* data = key.data();
  uint32_t h = kSeed ^ (static_cast<uint32_t>(n) * kM);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t w;
    std::memcpy(&w, data + i, 4);
    h += w;
    h *= kM;
    h ^= (h >> 16);
  }
  switch (n - i) {
    case 3:
      h += static_cast<unsigned char>(data[i + 2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[i + 1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[i]);
      h *= kM;
      h ^= (h >> 24);
      break;
  }
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(std::max(1, bits_per_key)) {
  // k = bits_per_key * ln(2), clamped to a sane range.
  k_ = static_cast<int>(bits_per_key_ * 0.69);
  k_ = std::clamp(k_, 1, 30);
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  // Tiny filters have high false-positive rates; enforce a floor.
  bits = std::max<size_t>(bits, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  for (uint32_t h : hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);  // rotate right 17 bits
    for (int j = 0; j < k_; ++j) {
      const uint32_t bitpos = h % static_cast<uint32_t>(bits);
      result[bitpos / 8] =
          static_cast<char>(result[bitpos / 8] | (1 << (bitpos % 8)));
      h += delta;
    }
  }
  result.push_back(static_cast<char>(k_));
  hashes_.clear();
  return result;
}

bool BloomKeyMayMatch(const Slice& key, const Slice& filter) {
  const size_t len = filter.size();
  if (len < 2) return true;
  const char* array = filter.data();
  const size_t bits = (len - 1) * 8;
  const int k = static_cast<unsigned char>(array[len - 1]);
  if (k > 30) return true;  // reserved for future encodings

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; ++j) {
    const uint32_t bitpos = h % static_cast<uint32_t>(bits);
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace kv
}  // namespace trass
