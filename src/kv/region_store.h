// RegionStore: the HBase-cluster analog. Row keys carry a 1-byte shard
// prefix (the paper's `shards` component); each shard maps to a region,
// each region is backed by `replication_factor` independent LSM
// databases (replicas), and scans fan out across regions on a thread
// pool with the filter pushed down (coprocessor style). I/O counters
// aggregate across regions/replicas for the evaluation.
//
// Replication & failover: ingest writes synchronously to every replica
// of the key's region; scans read from a preferred replica and, on a
// fault, fail over to the next healthy replica of the same region
// *before* consuming the region retry budget. A region is only retried
// (with bounded exponential backoff) or degraded-skipped once a full
// pass over all of its replicas has faulted — single-replica faults are
// invisible to callers except through the failover counters.
//
// Replica health: consecutive failures past `replica_demote_threshold`
// demote a replica; demoted replicas drop to the back of the scan order
// (still tried as a last resort, so demotion never reduces
// availability). Every `replica_probe_interval`-th scan of a region
// piggybacks a probe: demoted replicas are tried first, and a success
// reinstates them as preferred. The anti-entropy scrub
// (ScrubReplicas) range-checksums replicas of the same shard against
// each other, verifies table integrity, and rebuilds a corrupt or
// divergent replica by streaming rows from the healthiest peer.
//
// Availability (unchanged from the single-replica model once every
// replica of a region is down): failures are tracked per region; in
// opt-in degraded mode a region that still fails after retries is
// skipped — the scan returns rows from the healthy regions plus a
// ScanReport naming the skipped shards — instead of failing the query.
// Without degraded mode the error is returned, attributed to its region.
//
// Cooperative cancellation: scans accept an optional QueryContext whose
// deadline/cancel/budget is polled inside the worker tasks every
// kControlCheckInterval rows, around every retry sleep, and before every
// replica failover. A query stop is caller-attributed, never a region
// fault: it is not retried, not counted against region or replica
// health, and degraded mode does not "skip" the region over it. A stop
// that fires *mid-pass* before any full pass over the replicas has
// faulted fails the scan with the stop status — the region was never
// proven down, so it must not be degraded-skipped. A stop that fires
// after a full replica pass faulted (between retries, or while failing
// over during a retry pass) stops the retrying, but the fault outcome
// stands, so degraded mode can still skip that region.
//
// Thread-safety contract:
//  * Scan / ScanWithLimit / Get are safe to call concurrently with each
//    other, with ScrubReplicas, and with writes (Put / Delete /
//    ApplyBatch) — the LSM substrate supports one writer with any number
//    of concurrent readers. Writes themselves are single-writer: the
//    caller must serialize Put / Delete / ApplyBatch against each other
//    and against ScrubReplicas (a rebuild would miss concurrent writes;
//    TrassStore serializes both under its ingest mutex). A write against
//    a replica that is mid-rebuild fails with IoError for that replica.
//  * All health counters are guarded by one internal mutex.
//    Health()/HealthSnapshot() return a copy taken under a single lock
//    hold, so every field of the returned value is mutually consistent;
//    the live structures are never exposed. Do not cache the copy
//    across scans — it is a snapshot, not a view.
//  * Replica databases are handed to workers as shared_ptr snapshots;
//    the scrub may swap a rebuilt replica in concurrently, and in-flight
//    scans finish safely against the database they started on.

#ifndef TRASS_KV_REGION_STORE_H_
#define TRASS_KV_REGION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kv/db.h"
#include "kv/scan.h"
#include "util/query_context.h"
#include "util/retry_policy.h"
#include "util/thread_pool.h"

namespace trass {
namespace kv {

/// One region a degraded scan skipped after exhausting retries.
struct SkippedRegion {
  int shard = 0;
  std::string error;  // final attempt's status, region-attributed
};

/// Outcome of one fan-out scan. `skipped` is empty for a complete
/// result; callers surfacing partial results must propagate it.
struct ScanReport {
  /// Per-region outcome: which replica served the rows and how many
  /// replica failovers it took to get there.
  struct RegionScan {
    int served_replica = -1;  // -1: no replica served (skipped/failed)
    uint32_t failovers = 0;   // replica switches within this region
  };

  std::vector<SkippedRegion> skipped;
  uint64_t retries = 0;    // scan attempts beyond the first, all regions
  uint64_t failovers = 0;  // replica failovers across all regions
  std::vector<RegionScan> regions;  // indexed by shard

  /// Block-cache and readahead traffic this scan caused, measured as
  /// before/after deltas of each scanned replica's IoStats and summed
  /// over regions (failed attempts included — their I/O was real).
  /// Approximate when compactions or other queries touch the same
  /// replica concurrently; exact on an otherwise idle store.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_fills = 0;
  uint64_t readahead_reads = 0;       // readahead window preads issued
  uint64_t readahead_bytes_read = 0;  // bytes those preads fetched

  bool complete() const { return skipped.empty(); }
};

/// Availability counters for one replica of a region.
struct ReplicaHealth {
  uint64_t failed_attempts = 0;       // replica scan attempts that errored
  uint64_t consecutive_failures = 0;  // cleared by a successful scan
  bool demoted = false;   // deprioritized until a probe succeeds
  bool offline = false;   // detached while the scrub rebuilds it
  uint64_t rebuilds = 0;  // anti-entropy rebuilds of this replica
  std::string last_error;
  /// Live (not counter) state, read off the replica database at snapshot
  /// time: a read-only replica is wedged by a sticky background error
  /// (disk full, write fault). It rejects writes — so it demotes like any
  /// failing writer and drags ApplyBatch into degraded acks — but it
  /// still serves Get/scan failover; Resume() un-wedges it.
  bool read_only = false;
  std::string background_error;  // empty when healthy
};

/// Cumulative availability counters for one region. Returned only by
/// value from Health()/HealthSnapshot(), copied under a single lock
/// hold (see the thread-safety contract above).
struct RegionHealth {
  uint64_t failed_attempts = 0;       // attempts where *every* replica failed
  uint64_t consecutive_failures = 0;  // cleared by a successful scan
  uint64_t skipped_scans = 0;         // degraded-mode skips
  uint64_t failovers = 0;             // replica failovers on this region
  std::string last_error;
  std::vector<ReplicaHealth> replicas;
};

/// Outcome of one anti-entropy pass (see ScrubReplicas).
struct ScrubReport {
  uint64_t regions_checked = 0;
  uint64_t corrupt_replicas = 0;    // failed the checksum walk
  uint64_t divergent_replicas = 0;  // readable but content-mismatched
  uint64_t replicas_rebuilt = 0;
  uint64_t rows_copied = 0;  // rows streamed into rebuilt replicas
};

class RegionStore {
 public:
  struct RegionOptions {
    Options db_options;
    /// Number of regions == number of shard values callers may use.
    int num_regions = 8;
    /// Independent copies of each region, in [1, 8]. Writes go to all
    /// replicas synchronously; reads fail over between them. Raising the
    /// factor on an existing store opens empty new replicas — run
    /// ScrubReplicas to populate them before relying on failover.
    int replication_factor = 1;
    /// Worker threads for parallel region scans.
    size_t scan_threads = 4;
    /// Retries per region scan after a failure (0 disables). Each retry
    /// rebuilds the region iterator, so transient faults heal. With
    /// replication, one "attempt" is a full pass over all replicas.
    int max_scan_retries = 2;
    /// Backoff before the first retry; doubles per retry up to the cap.
    /// These three knobs configure the store's shared RetryPolicy, which
    /// also paces Resume() probing.
    uint64_t retry_backoff_ms = 2;
    uint64_t max_retry_backoff_ms = 100;
    /// Consecutive replica failures that demote the replica to the back
    /// of the scan order (it is still tried as a last resort).
    int replica_demote_threshold = 2;
    /// Every Nth scan of a region probes demoted replicas first so a
    /// healed replica is reinstated (0 disables probing; demoted
    /// replicas then only recover by serving as a last resort).
    uint64_t replica_probe_interval = 8;
    /// Opt-in degraded mode: skip regions that fail after retries and
    /// report them instead of failing the scan. Callers must check the
    /// ScanReport (or query metrics) to learn the result is partial.
    bool degraded_scans = false;
  };

  /// Opens `num_regions * replication_factor` databases under directory
  /// `path`. Replica 0 of region i lives at `region-<i>` (compatible
  /// with single-replica stores); replica r>0 at
  /// `region-<i>-replica-<r>`.
  static Status Open(const RegionOptions& options, const std::string& path,
                     std::unique_ptr<RegionStore>* store);

  int num_regions() const { return static_cast<int>(replicas_.size()); }
  int replication_factor() const { return options_.replication_factor; }

  /// Routes by the first key byte (the shard). Keys must be non-empty and
  /// their first byte must be < num_regions. Writes go to every replica
  /// of the shard; the first failing replica fails the write (replicas
  /// may then diverge until the next scrub). Read paths verify block
  /// checksums regardless of the passed options (torn-page detection is
  /// part of the store's contract). Get fails over between replicas on a
  /// fault; NotFound is authoritative (replicas are write-synchronous).
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);

  /// Applies one group-commit batch to region `shard`. Every key in the
  /// batch must carry that shard byte (the caller groups rows by shard).
  /// The batch is written to each replica as a single WAL record (one
  /// fsync per replica when syncing), which is where group commit beats
  /// per-row Put. `min_acks` replicas must accept the write for success:
  /// 0 (the default) means all replicas, i.e. the strict Put semantics;
  /// 1..factor tolerates that many failures — failed replicas are
  /// recorded against replica health (feeding demotion) and the batch is
  /// counted as a degraded write, to be healed by the next
  /// ScrubReplicas. Single-writer like Put (see the contract above).
  Status ApplyBatch(const WriteOptions& options, int shard, WriteBatch* batch,
                    int min_acks = 0);
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Scans every range in every region, applying `filter` server-side
  /// (null keeps all rows). Appends kept rows to *out (unordered across
  /// regions). Ranges must NOT include the shard byte: the store prepends
  /// each shard to each range, mirroring how TraSS replicates a scan
  /// across salted key spaces. When `report` is non-null it receives the
  /// scan outcome (retries, failovers, which replica served each shard,
  /// skipped shards in degraded mode). `control`, when non-null, is
  /// polled cooperatively inside the workers; an expired/cancelled query
  /// returns the stop status (rows gathered so far are discarded) and
  /// charges kept rows against its budget.
  Status Scan(const std::vector<ScanRange>& ranges, const ScanFilter* filter,
              std::vector<Row>* out, ScanReport* report = nullptr,
              const QueryContext* control = nullptr);

  /// Like Scan but stops globally after `limit` kept rows (approximate:
  /// each region stops at `limit`, the caller trims).
  Status ScanWithLimit(const std::vector<ScanRange>& ranges,
                       const ScanFilter* filter, size_t limit,
                       std::vector<Row>* out, ScanReport* report = nullptr,
                       const QueryContext* control = nullptr);

  /// Rows a scan worker processes between QueryContext polls.
  static constexpr size_t kControlCheckInterval = 128;

  /// Snapshot of one region's availability counters (including its
  /// replicas), copied under a single lock hold.
  RegionHealth Health(int region) const;

  /// Snapshot of every region's counters under one lock hold, so the
  /// regions are mutually consistent too.
  std::vector<RegionHealth> HealthSnapshot() const;

  /// Flushes all replicas of all regions (memtables -> SSTs).
  Status Flush();

  /// Checksum-scrubs every replica of every region (see
  /// DB::VerifyIntegrity); failures are attributed to region + replica.
  Status VerifyIntegrity();

  /// Anti-entropy pass: for each region, range-checksums every replica
  /// (a full ordered walk of keys and values with block checksums
  /// verified, plus a DB::VerifyIntegrity table walk), picks the
  /// healthiest replica as the source of truth (most rows among the
  /// clean ones), and rebuilds every corrupt or divergent replica by
  /// streaming the source's rows into a fresh database (the old replica
  /// directory is quarantined as `<dir>.bad`). Rebuilt replicas are
  /// reinstated into the scan order. Safe to run concurrently with
  /// scans; must not run concurrently with ingest. Returns the first
  /// unrecoverable error (every replica of some region corrupt), after
  /// still scrubbing the remaining regions.
  Status ScrubReplicas(ScrubReport* report = nullptr);

  /// Attempts DB::Resume on every replica wedged read-only by a
  /// background error, each under the shared retry policy. A resumed
  /// replica has its write-failure demotion cleared so it returns to the
  /// preferred scan order. Returns the first replica that stayed wedged
  /// (with region/replica context), OK when none were wedged or all
  /// resumed. Resume restores *writability* only — rows the replica
  /// missed while read-only are healed by the next ScrubReplicas.
  /// Single-writer like Put (see the thread-safety contract).
  Status Resume();

  /// True when some region has fewer writable (non-read-only,
  /// non-offline) replicas than `min_acks` requires (<= 0 means all
  /// replicas, mirroring ApplyBatch). This is the backpressure signal
  /// ingest uses to shed new work instead of queueing doomed writes.
  bool WritesDegraded(int min_acks = 0) const;

  /// Replicas currently wedged read-only (live gauge).
  uint64_t ReadOnlyReplicas() const;

  /// First replica's sticky background error (with region/replica
  /// context); OK when every replica is writable.
  Status FirstBackgroundError() const;

  /// Sums I/O counters across all replicas of all regions, plus the
  /// store-level failover/scrub/rebuild counters. The
  /// `read_only_replicas` field is filled live (it is a gauge).
  IoStats::Snapshot TotalIoStats() const;
  void ResetIoStats();

  uint64_t TotalTableBytes() const;

 private:
  RegionStore(const RegionOptions& options, std::string path);

  std::string ReplicaPath(size_t region, int replica) const;

  /// Fills the live read_only/background_error fields of a health copy
  /// taken under health_mu_ (called with no locks held — the replica
  /// databases are queried one at a time via Replica()).
  void FillLiveReplicaState(size_t region, RegionHealth* health) const;

  /// Snapshot of one replica's database (null while it is offline for a
  /// rebuild). Workers keep the shared_ptr for the duration of their
  /// scan so a concurrent swap cannot destroy the database under them.
  std::shared_ptr<DB> Replica(size_t region, int replica) const;

  /// Health-aware replica order for the next scan of `region`: healthy
  /// replicas (lowest index first) before demoted ones, except on every
  /// `replica_probe_interval`-th scan, when demoted replicas are probed
  /// first. Offline replicas are excluded. Also bumps the region's scan
  /// counter that drives the probe cadence.
  std::vector<int> ReplicaScanOrder(size_t region);

  Status ScanInternal(const std::vector<ScanRange>& ranges,
                      const ScanFilter* filter, size_t limit,
                      std::vector<Row>* out, ScanReport* report,
                      const QueryContext* control);

  /// One scan attempt over one replica; *rows is only filled on success.
  Status ScanReplicaOnce(DB* db, size_t region,
                         const std::vector<ScanRange>& ranges,
                         const ScanFilter* filter, size_t limit,
                         const QueryContext* control, std::vector<Row>* rows);

  /// Ordered walk of every row in `db` with checksums verified,
  /// producing a content fingerprint replicas can be compared by.
  struct Fingerprint {
    uint64_t rows = 0;
    uint32_t crc = 0;
    bool operator==(const Fingerprint& other) const {
      return rows == other.rows && crc == other.crc;
    }
  };
  static Status FingerprintReplica(DB* db, Fingerprint* fp);

  /// Streams `source`'s rows into a fresh database at the replica's
  /// path, quarantining the old directory, and swaps the rebuilt
  /// database into the replica table.
  Status RebuildReplica(size_t region, int replica,
                        const std::shared_ptr<DB>& source,
                        ScrubReport* report);

  void RecordFailure(size_t region, const Status& s);
  void RecordSuccess(size_t region, int replica);
  void RecordSkip(size_t region);
  void RecordReplicaFailure(size_t region, int replica, const Status& s);
  void RecordFailovers(size_t region, uint64_t n);
  void SetReplicaOffline(size_t region, int replica, bool offline);

  RegionOptions options_;
  std::string path_;
  Env* env_ = nullptr;

  // Guards the replica table (pointer swaps only; the databases
  // themselves are internally synchronized).
  mutable std::mutex replicas_mu_;
  std::vector<std::vector<std::shared_ptr<DB>>> replicas_;  // [region][r]

  std::unique_ptr<ThreadPool> pool_;

  // Shared backoff schedule for scan retries and Resume probing.
  RetryPolicy retry_policy_;

  // Guards health_ and scans_started_ (see thread-safety contract).
  mutable std::mutex health_mu_;
  std::vector<RegionHealth> health_;
  std::vector<uint64_t> scans_started_;  // per region, for probe cadence

  IoStats store_stats_;  // failover/scrub/rebuild counters
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_REGION_STORE_H_
