// RegionStore: the HBase-cluster analog. Row keys carry a 1-byte shard
// prefix (the paper's `shards` component); each shard maps to a region,
// each region is an independent LSM database, and scans fan out across
// regions on a thread pool with the filter pushed down (coprocessor
// style). I/O counters aggregate across regions for the evaluation.
//
// Availability: a failed region scan is retried with bounded exponential
// backoff; failures are tracked per region. In opt-in degraded mode a
// region that still fails after retries is skipped — the scan returns
// rows from the healthy regions plus a ScanReport naming the skipped
// shards — instead of failing the whole query. Without degraded mode the
// error is returned, attributed to its region.
//
// Cooperative cancellation: scans accept an optional QueryContext whose
// deadline/cancel/budget is polled inside the worker tasks every
// kControlCheckInterval rows and around every retry sleep. A query stop
// is caller-attributed, never a region fault: it is not retried, not
// counted against region health, and degraded mode does not "skip" the
// region over it — the scan fails with the stop status so callers can
// decide on partial-result semantics. A deadline that expires while a
// faulty region still has retries left stops the retrying (the fault
// outcome stands, so degraded mode can still skip that region).

#ifndef TRASS_KV_REGION_STORE_H_
#define TRASS_KV_REGION_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kv/db.h"
#include "kv/scan.h"
#include "util/query_context.h"
#include "util/thread_pool.h"

namespace trass {
namespace kv {

/// One region a degraded scan skipped after exhausting retries.
struct SkippedRegion {
  int shard = 0;
  std::string error;  // final attempt's status, region-attributed
};

/// Outcome of one fan-out scan. `skipped` is empty for a complete
/// result; callers surfacing partial results must propagate it.
struct ScanReport {
  std::vector<SkippedRegion> skipped;
  uint64_t retries = 0;  // scan attempts beyond the first, all regions

  bool complete() const { return skipped.empty(); }
};

/// Cumulative availability counters for one region.
struct RegionHealth {
  uint64_t failed_attempts = 0;       // scan attempts that errored
  uint64_t consecutive_failures = 0;  // cleared by a successful scan
  uint64_t skipped_scans = 0;         // degraded-mode skips
  std::string last_error;
};

class RegionStore {
 public:
  struct RegionOptions {
    Options db_options;
    /// Number of regions == number of shard values callers may use.
    int num_regions = 8;
    /// Worker threads for parallel region scans.
    size_t scan_threads = 4;
    /// Retries per region scan after a failure (0 disables). Each retry
    /// rebuilds the region iterator, so transient faults heal.
    int max_scan_retries = 2;
    /// Backoff before the first retry; doubles per retry up to the cap.
    uint64_t retry_backoff_ms = 2;
    uint64_t max_retry_backoff_ms = 100;
    /// Opt-in degraded mode: skip regions that fail after retries and
    /// report them instead of failing the scan. Callers must check the
    /// ScanReport (or query metrics) to learn the result is partial.
    bool degraded_scans = false;
  };

  /// Opens `num_regions` databases under directory `path`.
  static Status Open(const RegionOptions& options, const std::string& path,
                     std::unique_ptr<RegionStore>* store);

  int num_regions() const { return static_cast<int>(regions_.size()); }

  /// Routes by the first key byte (the shard). Keys must be non-empty and
  /// their first byte must be < num_regions. Read paths verify block
  /// checksums regardless of the passed options (torn-page detection is
  /// part of the store's contract).
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Scans every range in every region, applying `filter` server-side
  /// (null keeps all rows). Appends kept rows to *out (unordered across
  /// regions). Ranges must NOT include the shard byte: the store prepends
  /// each shard to each range, mirroring how TraSS replicates a scan
  /// across salted key spaces. When `report` is non-null it receives the
  /// scan outcome (retries, skipped shards in degraded mode). `control`,
  /// when non-null, is polled cooperatively inside the workers; an
  /// expired/cancelled query returns the stop status (rows gathered so
  /// far are discarded) and charges kept rows against its budget.
  Status Scan(const std::vector<ScanRange>& ranges, const ScanFilter* filter,
              std::vector<Row>* out, ScanReport* report = nullptr,
              const QueryContext* control = nullptr);

  /// Like Scan but stops globally after `limit` kept rows (approximate:
  /// each region stops at `limit`, the caller trims).
  Status ScanWithLimit(const std::vector<ScanRange>& ranges,
                       const ScanFilter* filter, size_t limit,
                       std::vector<Row>* out, ScanReport* report = nullptr,
                       const QueryContext* control = nullptr);

  /// Rows a scan worker processes between QueryContext polls.
  static constexpr size_t kControlCheckInterval = 128;

  /// Snapshot of one region's availability counters.
  RegionHealth Health(int region) const;

  /// Flushes all regions (memtables -> SSTs).
  Status Flush();

  /// Checksum-scrubs every region (see DB::VerifyIntegrity); failures
  /// are attributed to their region.
  Status VerifyIntegrity();

  /// Sums I/O counters across regions.
  IoStats::Snapshot TotalIoStats() const;
  void ResetIoStats();

  uint64_t TotalTableBytes() const;

 private:
  RegionStore(const RegionOptions& options, std::string path);

  Status ScanInternal(const std::vector<ScanRange>& ranges,
                      const ScanFilter* filter, size_t limit,
                      std::vector<Row>* out, ScanReport* report,
                      const QueryContext* control);

  /// One scan attempt over one region; *rows is only filled on success.
  Status ScanRegionOnce(size_t region, const std::vector<ScanRange>& ranges,
                        const ScanFilter* filter, size_t limit,
                        const QueryContext* control, std::vector<Row>* rows);

  void RecordFailure(size_t region, const Status& s);
  void RecordSuccess(size_t region);
  void RecordSkip(size_t region);

  RegionOptions options_;
  std::string path_;
  std::vector<std::unique_ptr<DB>> regions_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex health_mu_;
  std::vector<RegionHealth> health_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_REGION_STORE_H_
