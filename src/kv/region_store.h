// RegionStore: the HBase-cluster analog. Row keys carry a 1-byte shard
// prefix (the paper's `shards` component); each shard maps to a region,
// each region is an independent LSM database, and scans fan out across
// regions on a thread pool with the filter pushed down (coprocessor
// style). I/O counters aggregate across regions for the evaluation.

#ifndef TRASS_KV_REGION_STORE_H_
#define TRASS_KV_REGION_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "kv/db.h"
#include "kv/scan.h"
#include "util/thread_pool.h"

namespace trass {
namespace kv {

class RegionStore {
 public:
  struct RegionOptions {
    Options db_options;
    /// Number of regions == number of shard values callers may use.
    int num_regions = 8;
    /// Worker threads for parallel region scans.
    size_t scan_threads = 4;
  };

  /// Opens `num_regions` databases under directory `path`.
  static Status Open(const RegionOptions& options, const std::string& path,
                     std::unique_ptr<RegionStore>* store);

  int num_regions() const { return static_cast<int>(regions_.size()); }

  /// Routes by the first key byte (the shard). Keys must be non-empty and
  /// their first byte must be < num_regions.
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& options, const Slice& key);
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value);

  /// Scans every range in every region, applying `filter` server-side
  /// (null keeps all rows). Appends kept rows to *out (unordered across
  /// regions). Ranges must NOT include the shard byte: the store prepends
  /// each shard to each range, mirroring how TraSS replicates a scan
  /// across salted key spaces.
  Status Scan(const std::vector<ScanRange>& ranges, const ScanFilter* filter,
              std::vector<Row>* out);

  /// Like Scan but stops globally after `limit` kept rows (approximate:
  /// each region stops at `limit`, the caller trims).
  Status ScanWithLimit(const std::vector<ScanRange>& ranges,
                       const ScanFilter* filter, size_t limit,
                       std::vector<Row>* out);

  /// Flushes all regions (memtables -> SSTs).
  Status Flush();

  /// Sums I/O counters across regions.
  IoStats::Snapshot TotalIoStats() const;
  void ResetIoStats();

  uint64_t TotalTableBytes() const;

 private:
  RegionStore(const RegionOptions& options, std::string path);

  Status ScanInternal(const std::vector<ScanRange>& ranges,
                      const ScanFilter* filter, size_t limit,
                      std::vector<Row>* out);

  RegionOptions options_;
  std::string path_;
  std::vector<std::unique_ptr<DB>> regions_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_REGION_STORE_H_
