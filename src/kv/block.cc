#include "kv/block.h"

#include "util/coding.h"

namespace trass {
namespace kv {

Block::Block(std::string contents) : owned_(std::move(contents)) {
  data_ = owned_.data();
  size_ = owned_.size();
  Init();
}

Block::Block(const char* data, size_t size) : data_(data), size_(size) {
  Init();
}

void Block::Init() {
  if (size_ < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  num_restarts_ = DecodeFixed32(data_ + size_ - sizeof(uint32_t));
  const size_t restarts_bytes =
      (static_cast<size_t>(num_restarts_) + 1) * sizeof(uint32_t);
  if (restarts_bytes > size_) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(size_ - restarts_bytes);
}

class Block::Iter final : public Iterator {
 public:
  Iter(const Block* block)
      : data_(block->data_),
        restarts_(block->restart_offset_),
        num_restarts_(block->num_restarts_) {}

  bool Valid() const override { return current_ < restarts_; }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextEntry();
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last restart whose key is
    // < target, then scan forward linearly.
    uint32_t left = 0;
    uint32_t right = num_restarts_ > 0 ? num_restarts_ - 1 : 0;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      Slice mid_key;
      if (!RestartKey(mid, &mid_key)) {
        MarkCorrupt();
        return;
      }
      if (cmp_.Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (true) {
      ParseNextEntry();
      if (!Valid()) return;
      if (cmp_.Compare(key(), target) >= 0) return;
    }
  }

  void Next() override { ParseNextEntry(); }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  uint32_t RestartPoint(uint32_t index) const {
    return DecodeFixed32(data_ + restarts_ +
                         index * static_cast<uint32_t>(sizeof(uint32_t)));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    next_offset_ = num_restarts_ > 0 ? RestartPoint(index) : restarts_;
  }

  /// Decodes the full key stored at restart point `index`.
  bool RestartKey(uint32_t index, Slice* out) {
    const char* p = data_ + RestartPoint(index);
    const char* limit = data_ + restarts_;
    uint32_t shared, non_shared, value_len;
    p = DecodeEntryHeader(p, limit, &shared, &non_shared, &value_len);
    if (p == nullptr || shared != 0) return false;
    *out = Slice(p, non_shared);
    return true;
  }

  static const char* DecodeEntryHeader(const char* p, const char* limit,
                                       uint32_t* shared, uint32_t* non_shared,
                                       uint32_t* value_len) {
    Slice input(p, static_cast<size_t>(limit - p));
    if (!GetVarint32(&input, shared) || !GetVarint32(&input, non_shared) ||
        !GetVarint32(&input, value_len)) {
      return nullptr;
    }
    if (input.size() < static_cast<size_t>(*non_shared) + *value_len) {
      return nullptr;
    }
    return input.data();
  }

  void ParseNextEntry() {
    if (next_offset_ >= restarts_) {
      current_ = restarts_;  // invalid
      return;
    }
    const char* p = data_ + next_offset_;
    const char* limit = data_ + restarts_;
    uint32_t shared, non_shared, value_len;
    const char* entry = DecodeEntryHeader(p, limit, &shared, &non_shared,
                                          &value_len);
    if (entry == nullptr || key_.size() < shared) {
      MarkCorrupt();
      return;
    }
    current_ = next_offset_;
    key_.resize(shared);
    key_.append(entry, non_shared);
    value_ = Slice(entry + non_shared, value_len);
    next_offset_ =
        static_cast<uint32_t>(entry + non_shared + value_len - data_);
  }

  void MarkCorrupt() {
    current_ = restarts_;
    status_ = Status::Corruption("malformed block entry");
  }

  const char* data_;
  const uint32_t restarts_;
  const uint32_t num_restarts_;
  uint32_t current_ = 0xffffffffu;
  uint32_t next_offset_ = 0xffffffffu;
  std::string key_;
  Slice value_;
  Status status_;
  InternalKeyComparator cmp_;
};

Iterator* Block::NewIterator() const {
  if (malformed_) {
    return NewEmptyIterator(Status::Corruption("malformed block"));
  }
  if (num_restarts_ == 0) {
    return NewEmptyIterator();
  }
  return new Iter(this);
}

}  // namespace kv
}  // namespace trass
