// WriteBatch: an ordered group of Put/Delete operations applied atomically
// (one WAL record, one sequence-number range).
//
// Wire format (also the WAL payload):
//   sequence: fixed64 | count: fixed32 | records...
//   record := kTypeValue   varstring(key) varstring(value)
//           | kTypeDeletion varstring(key)

#ifndef TRASS_KV_WRITE_BATCH_H_
#define TRASS_KV_WRITE_BATCH_H_

#include <string>

#include "kv/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace kv {

class MemTable;

class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Number of operations in the batch.
  uint32_t Count() const;

  /// Approximate in-memory footprint.
  size_t ApproximateSize() const { return rep_.size(); }

  /// Callback interface for replaying a batch (WAL recovery, memtable
  /// insertion).
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- internal helpers used by the DB write path ---

  SequenceNumber sequence() const;
  void set_sequence(SequenceNumber seq);

  Slice Contents() const { return Slice(rep_); }
  static WriteBatch FromContents(const Slice& contents);

  /// Applies the batch to a memtable using its embedded sequence number.
  static Status InsertInto(const WriteBatch& batch, MemTable* mem);

 private:
  void SetCount(uint32_t n);

  std::string rep_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_WRITE_BATCH_H_
