#include "kv/table_cache.h"

#include "kv/env.h"
#include "kv/filename.h"

namespace trass {
namespace kv {

Status TableCache::Get(uint64_t file_number, std::shared_ptr<Table>* table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(file_number);
    if (it != tables_.end()) {
      *table = it->second;
      return Status::OK();
    }
  }
  // Open outside the lock; racing opens of the same file are harmless (one
  // wins the map insert).
  std::unique_ptr<RandomAccessFile> file;
  const std::string fname = TableFileName(dbname_, file_number);
  Status s = options_.env->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  std::unique_ptr<Table> opened;
  s = Table::Open(options_, file_number, std::move(file), block_cache_, stats_,
                  &opened);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tables_.emplace(file_number, std::move(opened));
  *table = it->second;
  return Status::OK();
}

void TableCache::Evict(uint64_t file_number) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.erase(file_number);
}

}  // namespace kv
}  // namespace trass
