// Skiplist keyed by arena-owned byte strings; the memtable's core
// structure. Single-writer (the DB mutex serializes inserts); readers may
// iterate concurrently with each other but not with writers — the embedded
// use here always holds the DB mutex around memtable access.

#ifndef TRASS_KV_SKIPLIST_H_
#define TRASS_KV_SKIPLIST_H_

#include <cassert>
#include <cstdint>

#include "kv/arena.h"
#include "util/random.h"

namespace trass {
namespace kv {

/// Comparator is a functor: int operator()(const char* a, const char* b)
/// over encoded entries (negative/zero/positive).
template <typename Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(nullptr, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts an entry. `entry` must outlive the list (arena-allocated) and
  /// must not compare equal to any existing entry.
  void Insert(const char* entry) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(entry, prev);
    assert(x == nullptr || compare_(entry, x->entry) != 0);
    const int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; ++i) prev[i] = head_;
      max_height_ = height;
    }
    x = NewNode(entry, height);
    for (int i = 0; i < height; ++i) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const char* entry) const {
    Node* x = FindGreaterOrEqual(entry, nullptr);
    return x != nullptr && compare_(entry, x->entry) == 0;
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const char* entry() const {
      assert(Valid());
      return node_->entry;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const char* target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    const char* entry;
    Node* Next(int level) const { return next[level]; }
    void SetNext(int level, Node* n) { next[level] = n; }
    Node* next[1];  // over-allocated to `height` pointers
  };

  Node* NewNode(const char* entry, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(Node*) * (height - 1));
    Node* node = reinterpret_cast<Node*>(mem);
    node->entry = entry;
    return node;
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight &&
           rnd_.Uniform(kBranching) == 0) {
      ++height;
    }
    return height;
  }

  /// First node >= entry; fills prev[] at every level when non-null.
  Node* FindGreaterOrEqual(const char* entry, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->entry, entry) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  int max_height_;
  Random rnd_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_SKIPLIST_H_
