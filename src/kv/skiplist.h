// Skiplist keyed by arena-owned byte strings; the memtable's core
// structure. Concurrency model (the LevelDB design): one writer at a
// time (the DB mutex serializes inserts) with any number of lock-free
// concurrent readers. New nodes are wired bottom-up with relaxed stores
// and published with a release store into their predecessor, so a reader
// that acquires the pointer observes a fully initialized node; readers
// never see a partially linked level because higher levels are only
// reachable through the same release-published pointers.
//
// Readers may therefore iterate while an insert is in progress; they see
// either the pre-insert or post-insert list, never a torn state. Nodes
// are never removed or moved (arena-backed), so iterators stay valid for
// the lifetime of the list.

#ifndef TRASS_KV_SKIPLIST_H_
#define TRASS_KV_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "kv/arena.h"
#include "util/random.h"

namespace trass {
namespace kv {

/// Comparator is a functor: int operator()(const char* a, const char* b)
/// over encoded entries (negative/zero/positive).
template <typename Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(nullptr, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts an entry. `entry` must outlive the list (arena-allocated) and
  /// must not compare equal to any existing entry. Single writer only;
  /// safe against concurrent readers.
  void Insert(const char* entry) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(entry, prev);
    assert(x == nullptr || compare_(entry, x->entry) != 0);
    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
      // Relaxed is sufficient: a reader that sees the new height before
      // the new node's levels are linked just falls through head_'s null
      // next pointers down to the populated levels.
      max_height_.store(height, std::memory_order_relaxed);
    }
    x = NewNode(entry, height);
    for (int i = 0; i < height; ++i) {
      // The new node is not yet reachable, so its own pointer can be set
      // without a barrier; the store into prev publishes the node (and
      // its entry bytes) with release ordering.
      x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const char* entry) const {
    Node* x = FindGreaterOrEqual(entry, nullptr);
    return x != nullptr && compare_(entry, x->entry) == 0;
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const char* entry() const {
      assert(Valid());
      return node_->entry;
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    void Seek(const char* target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }
    void SeekToFirst() { node_ = list_->head_->Next(0); }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const char* e) : entry(e) {}

    const char* entry;

    Node* Next(int level) const {
      return next_[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* n) {
      next_[level].store(n, std::memory_order_release);
    }
    Node* NoBarrierNext(int level) const {
      return next_[level].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int level, Node* n) {
      next_[level].store(n, std::memory_order_relaxed);
    }

   private:
    // Over-allocated to `height` pointers by NewNode.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const char* entry, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(entry);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight &&
           rnd_.Uniform(kBranching) == 0) {
      ++height;
    }
    return height;
  }

  /// First node >= entry; fills prev[] at every level when non-null.
  Node* FindGreaterOrEqual(const char* entry, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->entry, entry) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

}  // namespace kv
}  // namespace trass

#endif  // TRASS_KV_SKIPLIST_H_
