#include "kv/write_batch.h"

#include "kv/memtable.h"
#include "util/coding.h"

namespace trass {
namespace kv {

namespace {
constexpr size_t kHeader = 12;  // 8-byte sequence + 4-byte count
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader, '\0');
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

void WriteBatch::SetCount(uint32_t n) {
  std::string encoded;
  PutFixed32(&encoded, n);
  rep_.replace(8, 4, encoded);
}

SequenceNumber WriteBatch::sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::set_sequence(SequenceNumber seq) {
  std::string encoded;
  PutFixed64(&encoded, seq);
  rep_.replace(0, 8, encoded);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  uint32_t found = 0;
  while (!input.empty()) {
    ++found;
    const char tag = input[0];
    input.remove_prefix(1);
    Slice key, value;
    switch (tag) {
      case kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put");
        }
        handler->Put(key, value);
        break;
      case kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete");
        }
        handler->Delete(key);
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

WriteBatch WriteBatch::FromContents(const Slice& contents) {
  WriteBatch batch;
  batch.rep_.assign(contents.data(), contents.size());
  return batch;
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  MemTableInserter(SequenceNumber seq, MemTable* mem)
      : sequence_(seq), mem_(mem) {}

  void Put(const Slice& key, const Slice& value) override {
    mem_->Add(sequence_++, kTypeValue, key, value);
  }
  void Delete(const Slice& key) override {
    mem_->Add(sequence_++, kTypeDeletion, key, Slice());
  }

 private:
  SequenceNumber sequence_;
  MemTable* mem_;
};

}  // namespace

Status WriteBatch::InsertInto(const WriteBatch& batch, MemTable* mem) {
  MemTableInserter inserter(batch.sequence(), mem);
  return batch.Iterate(&inserter);
}

}  // namespace kv
}  // namespace trass
