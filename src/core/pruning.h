// Global pruning (paper Section V-C): selects the XZ* index spaces that
// can still hold trajectories similar to the query, and merges their
// encoded values into contiguous key ranges.
//
// Lemma map:
//   Lemma 6  — elements coarser than MinR (the resolution of
//              SEE(Ext(Q.MBR, eps))) cannot hold similar trajectories.
//   Lemma 7  — elements finer than MaxR cannot either (their covered
//              trajectories are too small relative to Q).
//   Lemma 8  — elements disjoint from Ext(Q.MBR, eps) are pruned, along
//              with their whole subtree (child elements nest inside).
//   Lemma 9  — minDistEE: max over Q's MBR edges of the edge-to-element
//              distance lower-bounds the similarity distance.
//   Lemma 10 — a sub-quad farther than eps from Q's points kills every
//              position code containing that sub-quad.
//   Lemma 11 — minDistIS: the same edge bound against the index space.

#ifndef TRASS_CORE_PRUNING_H_
#define TRASS_CORE_PRUNING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dp_features.h"
#include "geo/mbr.h"
#include "geo/point.h"
#include "index/xzstar.h"
#include "util/query_context.h"

namespace trass {
namespace core {

/// Query-side context reused across pruning and filtering.
struct QueryGeometry {
  std::vector<geo::Point> points;
  geo::Mbr mbr;
  DpFeatures features;

  static QueryGeometry Make(const std::vector<geo::Point>& query_points,
                           double dp_tolerance);
};

/// Lower bound on the similarity distance between the query and any
/// trajectory fully contained in `region` (Lemma 9/11 bound): the max
/// over Q's MBR edges of the minimum edge-to-region distance.
double MinDistToRegion(const geo::Mbr& query_mbr,
                       const std::vector<geo::Mbr>& region);

/// Convenience overload for a single rectangle (an enlarged element).
double MinDistToRegion(const geo::Mbr& query_mbr, const geo::Mbr& region);

/// Minimum distance from rectangle `rect` to the query's point set
/// (Lemma 10's d(sq, Q)).
double RectToPointsDistance(const geo::Mbr& rect,
                            const std::vector<geo::Point>& points);

/// MaxR (Definition 9) for a query MBR of the given dimensions.
int ComputeMaxR(double mbr_width, double mbr_height, double eps,
                int max_resolution);

/// MinR (Definition 8): resolution of the smallest enlarged element
/// covering Ext(Q.MBR, eps). 0 means only the root can cover it.
int ComputeMinR(const geo::Mbr& query_mbr, double eps, int max_resolution);

/// True when the sorted vector contains a value in [lo, hi].
bool SortedContainsRange(const std::vector<int64_t>& sorted, int64_t lo,
                         int64_t hi);

class GlobalPruner {
 public:
  /// `directory`, when non-null, is the store's sorted list of index
  /// values actually present; subtrees without data are not descended
  /// (the traversal becomes data-bounded instead of 4^r-bounded).
  /// `control`, when non-null, is polled every kControlCheckStride
  /// visited elements: once it says stop, CandidateRanges abandons the
  /// traversal and returns what it has — the caller must consult the
  /// control before treating the ranges as complete.
  GlobalPruner(const index::XzStar* xz, const QueryGeometry* query,
               const std::vector<int64_t>* directory = nullptr,
               const QueryContext* control = nullptr)
      : xz_(xz), query_(query), directory_(directory), control_(control) {}

  /// Algorithm 1: every index value that may hold a trajectory within
  /// `eps` of the query, merged into inclusive [lo, hi] value ranges.
  ///
  /// The traversal visits at most `visit_budget` elements; past the
  /// budget it emits conservative whole-subtree ranges instead of
  /// descending (sound: a superset of the exact candidates), mirroring
  /// how GeoMesa-style XZ range generation caps range counts.
  /// `use_position_codes = false` stops after Lemma 9 and emits whole
  /// elements (XZ-Ordering-style granularity) — the ablation knob for
  /// measuring what Lemmas 10/11 contribute.
  std::vector<std::pair<int64_t, int64_t>> CandidateRanges(
      double eps, size_t visit_budget = kDefaultVisitBudget,
      bool use_position_codes = true) const;

  static constexpr size_t kDefaultVisitBudget = 65536;

  /// Elements visited between QueryContext polls (a clock read per
  /// element would dominate small traversals).
  static constexpr size_t kControlCheckStride = 64;

  /// Number of individual candidate index values in `ranges`.
  static int64_t CountValues(
      const std::vector<std::pair<int64_t, int64_t>>& ranges);

  /// Lower bound for one index space (combines Lemmas 10 and 11); used
  /// directly by the best-first top-k search.
  double IndexSpaceLowerBound(const index::QuadSeq& seq, int pos) const;

  /// Lower bound for an enlarged element (Lemma 9's minDistEE).
  double ElementLowerBound(const index::QuadSeq& seq) const;

 private:
  void Visit(const index::QuadSeq& seq, double eps, int min_r, int max_r,
             const geo::Mbr& ext, size_t* budget, bool use_position_codes,
             std::vector<std::pair<int64_t, int64_t>>* out) const;

  /// Emits the surviving position codes of element `seq` as value ranges.
  void EmitElement(const index::QuadSeq& seq, double eps,
                   std::vector<std::pair<int64_t, int64_t>>* out) const;

  /// Whole-subtree value range of an element (conservative candidate).
  std::pair<int64_t, int64_t> SubtreeRange(const index::QuadSeq& seq) const;

  bool SubtreeHasData(const index::QuadSeq& seq) const;

  const index::XzStar* xz_;
  const QueryGeometry* query_;
  const std::vector<int64_t>* directory_;
  const QueryContext* control_;
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_PRUNING_H_
