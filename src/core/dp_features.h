// Douglas-Peucker features (paper Section IV-D): a handful of
// representative points plus one oriented bounding box per chord covering
// the raw points in between. Precomputed at ingest (`dp-points` and
// `dp-mbrs` columns of Table I) and used by the local-filtering lemmas.

#ifndef TRASS_CORE_DP_FEATURES_H_
#define TRASS_CORE_DP_FEATURES_H_

#include <cstdint>
#include <vector>

#include "geo/oriented_box.h"
#include "geo/point.h"

namespace trass {
namespace core {

struct DpFeatures {
  /// Indices of the representative points in the raw trajectory
  /// (ascending; first and last always included).
  std::vector<uint32_t> rep_indices;

  /// The representative points themselves (rep_points[i] ==
  /// points[rep_indices[i]]).
  std::vector<geo::Point> rep_points;

  /// boxes[i] covers points[rep_indices[i] .. rep_indices[i+1]], oriented
  /// along the chord between the two representative points.
  std::vector<geo::OrientedBox> boxes;

  /// Computes features for `points` with DP tolerance `tolerance`.
  static DpFeatures Compute(const std::vector<geo::Point>& points,
                            double tolerance);

  /// Like Compute, but doubles the tolerance until at most
  /// `max_rep_points` representatives remain. Lemma 14 is quadratic in
  /// the number of boxes, so uncapped features on long winding
  /// trajectories would make the local filter costlier than the exact
  /// similarity it is meant to avoid.
  static DpFeatures ComputeCapped(const std::vector<geo::Point>& points,
                                  double tolerance,
                                  size_t max_rep_points = 8);

  /// Minimum distance from `p` to the union of this trajectory's boxes —
  /// a lower bound on the distance from p to any trajectory point.
  double DistancePointToBoxes(const geo::Point& p) const;
};

/// Lemma 14's bound: max over `box`'s edges of the minimum distance from
/// that edge to `target`'s boxes. Since a tight oriented box has a
/// trajectory point on each edge, this lower-bounds the distance from
/// some point of the boxed trajectory to the target trajectory.
double BoxToFeatureDistance(const geo::OrientedBox& box,
                            const DpFeatures& target);

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_DP_FEATURES_H_
