// Per-query metrics matching what the paper's evaluation reports:
// pruning/filtering times, trajectories retrieved from the store (global
// pruning quality), candidates surviving local filtering, and precision.

#ifndef TRASS_CORE_METRICS_H_
#define TRASS_CORE_METRICS_H_

#include <cstdint>

namespace trass {
namespace core {

struct QueryMetrics {
  double pruning_ms = 0.0;    // global pruning (range generation)
  double scan_ms = 0.0;       // store scan incl. pushdown local filter
  double refine_ms = 0.0;     // exact similarity computations
  double total_ms = 0.0;

  uint64_t scan_ranges = 0;     // key ranges issued to the store

  /// Index values the query actually submitted to store scans. For the
  /// threshold/range/join paths this counts the *present* values (ones
  /// the value directory holds) inside the final scanned ranges — after
  /// directory intersection and, when enabled, after the filter tier;
  /// candidate values that were empty or pruned before any scan are
  /// excluded. For top-k it counts drained index spaces handed to a
  /// store round-trip (the PR 5 definition), with spaces the filter
  /// tier pruned at drain time likewise excluded. Either way: an index
  /// value counts here iff the store was asked to read it.
  uint64_t index_values = 0;
  uint64_t retrieved = 0;       // rows scanned in the store (I/O)
  uint64_t candidates = 0;      // rows surviving local filtering
  uint64_t refined = 0;         // candidates entering exact refinement
  uint64_t results = 0;         // final answers

  /// Refinement-engine breakdown (see core/refiner.h). `refined` above
  /// counts candidates the engine decoded; of those, `lb_rejected` were
  /// disposed of by the lower-bound cascade without running the O(n*m)
  /// DP and `refine_dp_runs` ran it. The *_ms fields are summed across
  /// refine workers (CPU time; with refine_threads > 1 they can exceed
  /// the wall-clock refine_ms).
  uint64_t lb_rejected = 0;        // cascade proved dist > bound, DP skipped
  uint64_t refine_dp_runs = 0;     // exact DP kernels executed
  uint64_t refine_threads = 0;     // engine parallelism for this query
  double refine_decode_ms = 0.0;   // row decode + SoA flatten
  double refine_lb_ms = 0.0;       // lower-bound cascade
  double refine_dp_ms = 0.0;       // exact DP kernels

  /// Degraded-mode availability (see RegionStore::RegionOptions). When
  /// `partial` is set, one or more store regions were skipped after
  /// exhausting retries and the answer may be missing their rows.
  bool partial = false;
  uint64_t skipped_regions = 0;  // region-skip events across all scans
  uint64_t scan_retries = 0;     // scan attempts beyond the first

  /// Replication (see RegionOptions::replication_factor). Failovers are
  /// reads that moved to another replica of the same shard after a
  /// fault; a query can fail over and still be complete (not partial),
  /// which is the whole point of replication.
  uint64_t replica_failovers = 0;

  /// Cooperative-stop outcome (see QueryOptions). With `allow_partial`
  /// the query returns OK with `partial` set and the reason recorded
  /// here; the flags compose with `skipped_regions` (a query can be
  /// partial for both reasons at once). Without `allow_partial` the
  /// reason arrives as the returned Status instead.
  bool deadline_expired = false;   // stopped at QueryOptions::deadline_ms
  bool cancelled = false;          // stopped via QueryOptions::cancel
  bool budget_exhausted = false;   // stopped at QueryOptions::max_candidates
  double admission_wait_ms = 0.0;  // time queued in admission control

  /// Scatter-gather serving tier (serve/coordinator.h). Zero on
  /// single-store queries. `shards_contacted` counts shards the
  /// coordinator fanned the query out to; `shards_skipped` counts
  /// shards whose answer is missing from the merge (breaker-open,
  /// failed after retries, or unresolved at the deadline) — non-zero
  /// only with allow_partial, and always accompanied by `partial` so
  /// degradation is observable, never silent. `hedges_sent`/`hedge_wins`
  /// count straggler hedge requests and how many beat their primary;
  /// `breaker_open` counts fan-outs rejected by an open circuit
  /// breaker during this query.
  uint64_t shards_contacted = 0;
  uint64_t shards_skipped = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedge_wins = 0;
  uint64_t breaker_open = 0;

  /// Coordinator-level replica failovers (the shard-topology analog of
  /// `replica_failovers`): shards whose answer is missing from the
  /// merge but whose key space was fully covered by replica shards, so
  /// the merged answer is still complete — `partial` stays false and
  /// strict queries still succeed. Non-zero only with
  /// CoordinatorOptions::replication_factor > 1.
  uint64_t shard_failovers = 0;

  /// Memory-resident filter tier (src/filter/, TrassOptions::filter_tier).
  /// All zero when the tier is disabled. `filter_elements_pruned` counts
  /// candidate index values skipped because the element summary index
  /// proved them empty; `filter_mbr_pruned` counts present values (or,
  /// in top-k, whole subtrees/spaces) killed by the aggregate-MBR edge
  /// bound before any scan; `fingerprint_skips` counts rows whose
  /// per-row fingerprint record proved them misses without reading
  /// their bytes. `filter_memory_bytes` is a gauge: RAM held by the
  /// filter snapshot the query consulted (coordinator merges sum the
  /// per-shard gauges).
  uint64_t filter_elements_pruned = 0;
  uint64_t filter_mbr_pruned = 0;
  uint64_t fingerprint_skips = 0;
  uint64_t filter_memory_bytes = 0;

  /// Storage-engine I/O breakdown for this query's store scans, summed
  /// across scan fan-outs (see ScanReport: per-replica IoStats deltas,
  /// approximate under concurrent compactions/queries on the same
  /// replica). Hits/misses/fills count block-cache traffic on the
  /// random-access read path; the readahead counters cover the
  /// streaming-scan path (Options::scan_readahead_bytes), which bypasses
  /// the cache by design — a scan-heavy query should show readahead
  /// traffic and near-zero fills.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_fills = 0;
  uint64_t readahead_reads = 0;
  uint64_t readahead_bytes_read = 0;

  /// Ingest watermark snapshot taken when the query started: every
  /// trajectory with ticket <= this value was fully visible (row +
  /// features + value-directory entry) to the query; later ingest may or
  /// may not be observed (see TrassStore::SubmitAsync).
  uint64_t ingest_watermark = 0;

  /// Replicas wedged read-only by a background error (disk full, write
  /// fault) when the query started. Non-zero does not make the answer
  /// partial — read-only replicas still serve reads — but it flags that
  /// writes are degraded and the answer may predate unresumed ingest.
  uint64_t read_only_replicas = 0;

  double precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(results) / static_cast<double>(candidates);
  }
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_METRICS_H_
