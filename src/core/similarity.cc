#include "core/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace trass {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Candidate points per block in the flat Hausdorff nearest-point scans.
constexpr size_t kBlock = 8;

// Directed Hausdorff pass max_{a in A} min_{b in B} d^2(a, b), blocked so
// the inner nearest-point scan vectorizes kBlock lanes at a time, with two
// early exits: a point whose partial nearest is already <= the running max
// cannot raise it (skip the rest of its scan), and a fully-scanned nearest
// above `abandon_sq` proves the distance exceeds the caller's threshold
// (*exceeded, return). `abandon_sq = inf` gives the exact pass.
double DirectedHausdorffSq(const FlatView& a, const FlatView& b, double seed,
                           double abandon_sq, bool* exceeded) {
  double result = seed;
  const double* bx = b.x;
  const double* by = b.y;
  for (size_t i = 0; i < a.n; ++i) {
    const double ax = a.x[i];
    const double ay = a.y[i];
    double nearest = kInf;
    size_t j = 0;
    for (; j + kBlock <= b.n; j += kBlock) {
      double block_min = kInf;
      for (size_t k = 0; k < kBlock; ++k) {
        const double dx = ax - bx[j + k];
        const double dy = ay - by[j + k];
        const double d = dx * dx + dy * dy;
        block_min = d < block_min ? d : block_min;
      }
      if (block_min < nearest) nearest = block_min;
      if (nearest <= result) break;  // cannot raise the max
    }
    if (nearest > result) {
      for (; j < b.n; ++j) {
        const double dx = ax - bx[j];
        const double dy = ay - by[j];
        const double d = dx * dx + dy * dy;
        if (d < nearest) nearest = d;
        if (nearest <= result) break;
      }
    }
    if (nearest > result) {
      if (nearest > abandon_sq) {
        *exceeded = true;
        return result;
      }
      result = nearest;
    }
  }
  return result;
}

}  // namespace

double DiscreteFrechet(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  // Rolling-row DP over squared distances; max/min commute with sqrt.
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::DistanceSquared(q[0], t[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::DistanceSquared(q[i], t[0]));
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, geo::DistanceSquared(q[i], t[j]));
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m - 1]);
}

bool FrechetWithin(const std::vector<geo::Point>& q,
                   const std::vector<geo::Point>& t, double eps) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  const double eps_sq = eps * eps;
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::DistanceSquared(q[0], t[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::DistanceSquared(q[i], t[0]));
    bool any_within = curr[0] <= eps_sq;
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, geo::DistanceSquared(q[i], t[j]));
      any_within = any_within || curr[j] <= eps_sq;
    }
    if (!any_within) return false;  // every path already exceeds eps
    std::swap(prev, curr);
  }
  return prev[m - 1] <= eps_sq;
}

double Hausdorff(const std::vector<geo::Point>& q,
                 const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  auto directed = [](const std::vector<geo::Point>& a,
                     const std::vector<geo::Point>& b, double best_so_far) {
    double result = best_so_far;
    for (const geo::Point& pa : a) {
      double nearest = kInf;
      for (const geo::Point& pb : b) {
        nearest = std::min(nearest, geo::DistanceSquared(pa, pb));
        if (nearest <= result) break;  // cannot raise the max
      }
      result = std::max(result, nearest);
    }
    return result;
  };
  double h = directed(q, t, 0.0);
  h = directed(t, q, h);
  return std::sqrt(h);
}

bool HausdorffWithin(const std::vector<geo::Point>& q,
                     const std::vector<geo::Point>& t, double eps) {
  const double eps_sq = eps * eps;
  auto directed_within = [eps_sq](const std::vector<geo::Point>& a,
                                  const std::vector<geo::Point>& b) {
    for (const geo::Point& pa : a) {
      bool found = false;
      for (const geo::Point& pb : b) {
        if (geo::DistanceSquared(pa, pb) <= eps_sq) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return directed_within(q, t) && directed_within(t, q);
}

double Dtw(const std::vector<geo::Point>& q,
           const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  std::vector<double> prev(m), curr(m);
  prev[0] = geo::Distance(q[0], t[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(q[0], t[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = prev[0] + geo::Distance(q[i], t[0]);
    for (size_t j = 1; j < m; ++j) {
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + geo::Distance(q[i], t[j]);
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

bool DtwWithin(const std::vector<geo::Point>& q,
               const std::vector<geo::Point>& t, double eps) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  std::vector<double> prev(m), curr(m);
  prev[0] = geo::Distance(q[0], t[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(q[0], t[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = prev[0] + geo::Distance(q[i], t[0]);
    double row_min = curr[0];
    for (size_t j = 1; j < m; ++j) {
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + geo::Distance(q[i], t[j]);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > eps) return false;  // DTW cost only grows downstream
    std::swap(prev, curr);
  }
  return prev[m - 1] <= eps;
}

bool FrechetWithinDistance(const std::vector<geo::Point>& q,
                           const std::vector<geo::Point>& t, double eps,
                           double* distance) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  const double eps_sq = eps * eps;
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::DistanceSquared(q[0], t[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::DistanceSquared(q[i], t[0]));
    bool any_within = curr[0] <= eps_sq;
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, geo::DistanceSquared(q[i], t[j]));
      any_within = any_within || curr[j] <= eps_sq;
    }
    if (!any_within) return false;  // every path already exceeds eps
    std::swap(prev, curr);
  }
  if (prev[m - 1] > eps_sq) return false;
  *distance = std::sqrt(prev[m - 1]);
  return true;
}

bool HausdorffWithinDistance(const std::vector<geo::Point>& q,
                             const std::vector<geo::Point>& t, double eps,
                             double* distance) {
  assert(!q.empty() && !t.empty());
  const double eps_sq = eps * eps;
  double result = 0.0;
  auto directed = [eps_sq, &result](const std::vector<geo::Point>& a,
                                    const std::vector<geo::Point>& b) {
    for (const geo::Point& pa : a) {
      double nearest = kInf;
      for (const geo::Point& pb : b) {
        nearest = std::min(nearest, geo::DistanceSquared(pa, pb));
        if (nearest <= result) break;  // cannot raise the max
      }
      if (nearest > result) {
        if (nearest > eps_sq) return false;
        result = nearest;
      }
    }
    return true;
  };
  if (!directed(q, t) || !directed(t, q)) return false;
  *distance = std::sqrt(result);
  return true;
}

bool DtwWithinDistance(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t, double eps,
                       double* distance) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  std::vector<double> prev(m), curr(m);
  prev[0] = geo::Distance(q[0], t[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(q[0], t[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = prev[0] + geo::Distance(q[i], t[0]);
    double row_min = curr[0];
    for (size_t j = 1; j < m; ++j) {
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + geo::Distance(q[i], t[j]);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > eps) return false;  // DTW cost only grows downstream
    std::swap(prev, curr);
  }
  if (prev[m - 1] > eps) return false;
  *distance = prev[m - 1];
  return true;
}

double Similarity(Measure m, const std::vector<geo::Point>& q,
                  const std::vector<geo::Point>& t) {
  switch (m) {
    case Measure::kFrechet:
      return DiscreteFrechet(q, t);
    case Measure::kHausdorff:
      return Hausdorff(q, t);
    case Measure::kDtw:
      return Dtw(q, t);
  }
  return kInf;
}

bool SimilarityWithin(Measure m, const std::vector<geo::Point>& q,
                      const std::vector<geo::Point>& t, double eps) {
  switch (m) {
    case Measure::kFrechet:
      return FrechetWithin(q, t, eps);
    case Measure::kHausdorff:
      return HausdorffWithin(q, t, eps);
    case Measure::kDtw:
      return DtwWithin(q, t, eps);
  }
  return false;
}

bool SimilarityWithinDistance(Measure m, const std::vector<geo::Point>& q,
                              const std::vector<geo::Point>& t, double eps,
                              double* distance) {
  switch (m) {
    case Measure::kFrechet:
      return FrechetWithinDistance(q, t, eps, distance);
    case Measure::kHausdorff:
      return HausdorffWithinDistance(q, t, eps, distance);
    case Measure::kDtw:
      return DtwWithinDistance(q, t, eps, distance);
  }
  return false;
}

// ---- flat (structure-of-arrays) kernels ----

// The exact Fréchet/DTW kernels sweep the DP by anti-diagonals: cell
// (i, j) depends only on diagonals i+j-1 and i+j-2, so every cell of one
// diagonal is independent and the whole recurrence — not just the
// distance pass — vectorizes. Diagonals are indexed by the query point i
// and rolled through three arrays; entries outside a diagonal's valid
// range stay +inf from initialization (a diagonal's range only grows at
// the top and shrinks at the bottom by one per step, so a stale slot is
// never read), which makes the interior formula handle the DP's first
// row and column for free: min against +inf selects the predecessors
// that exist. The candidate is copied reversed so t[k - i] is a forward
// contiguous load along the diagonal. min/max are exact and the per-cell
// distance expression is unchanged, so results are bit-identical to the
// scalar reference.
double DiscreteFrechetFlat(const FlatView& q, const FlatView& t,
                           DpScratch* scratch) {
  assert(q.n > 0 && t.n > 0);
  const size_t n = q.n;
  const size_t m = t.n;
  scratch->ReserveDiag(n, m);
  double* __restrict d0 = scratch->diag0.data();
  double* __restrict d1 = scratch->diag1.data();
  double* __restrict d2 = scratch->diag2.data();
  double* __restrict rx = scratch->rev_x.data();
  double* __restrict ry = scratch->rev_y.data();
  std::fill(d0, d0 + n, kInf);
  std::fill(d1, d1 + n, kInf);
  std::fill(d2, d2 + n, kInf);
  for (size_t j = 0; j < m; ++j) {
    rx[j] = t.x[m - 1 - j];
    ry[j] = t.y[m - 1 - j];
  }
  for (size_t k = 0; k + 1 < n + m; ++k) {
    const size_t lo = k >= m ? k - m + 1 : 0;
    const size_t hi = std::min(k, n - 1);
    // rx[i + c] == t.x[k - i] along this diagonal.
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(m) - 1 -
                             static_cast<std::ptrdiff_t>(k);
    size_t i = lo;
    if (lo == 0) {
      const double dx = q.x[0] - t.x[k];
      const double dy = q.y[0] - t.y[k];
      const double d = dx * dx + dy * dy;
      d0[0] = k == 0 ? d : std::max(d, d1[0]);
      i = 1;
    }
    for (; i <= hi; ++i) {
      const double dx = q.x[i] - rx[static_cast<std::ptrdiff_t>(i) + c];
      const double dy = q.y[i] - ry[static_cast<std::ptrdiff_t>(i) + c];
      const double d = dx * dx + dy * dy;
      const double reach = std::min(std::min(d1[i - 1], d1[i]), d2[i - 1]);
      d0[i] = reach > d ? reach : d;
    }
    double* tmp = d2;
    d2 = d1;
    d1 = d0;
    d0 = tmp;
  }
  return std::sqrt(d1[n - 1]);
}

bool FrechetWithinDistanceFlat(const FlatView& q, const FlatView& t,
                               double eps, double* distance,
                               DpScratch* scratch) {
  assert(q.n > 0 && t.n > 0);
  if (std::isinf(eps) && eps > 0) {
    // Nothing to abandon against: the wavefront exact kernel is faster
    // than the row DP. (Top-k refinement hits this until k results
    // exist.)
    *distance = DiscreteFrechetFlat(q, t, scratch);
    return true;
  }
  // Same anti-diagonal wavefront as the exact kernel, plus early
  // abandoning: a cell of diagonal k+1 only depends on diagonals k and
  // k-1 through max(d, min(...)), so once two consecutive diagonals have
  // no cell within eps every later cell provably exceeds it.
  const size_t n = q.n;
  const size_t m = t.n;
  const double eps_sq = eps * eps;
  scratch->ReserveDiag(n, m);
  double* __restrict d0 = scratch->diag0.data();
  double* __restrict d1 = scratch->diag1.data();
  double* __restrict d2 = scratch->diag2.data();
  double* __restrict rx = scratch->rev_x.data();
  double* __restrict ry = scratch->rev_y.data();
  std::fill(d0, d0 + n, kInf);
  std::fill(d1, d1 + n, kInf);
  std::fill(d2, d2 + n, kInf);
  for (size_t j = 0; j < m; ++j) {
    rx[j] = t.x[m - 1 - j];
    ry[j] = t.y[m - 1 - j];
  }
  bool prev_any = true;
  for (size_t k = 0; k + 1 < n + m; ++k) {
    const size_t lo = k >= m ? k - m + 1 : 0;
    const size_t hi = std::min(k, n - 1);
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(m) - 1 -
                             static_cast<std::ptrdiff_t>(k);
    size_t i = lo;
    int any = 0;
    if (lo == 0) {
      const double dx = q.x[0] - t.x[k];
      const double dy = q.y[0] - t.y[k];
      const double d = dx * dx + dy * dy;
      const double v = k == 0 ? d : std::max(d, d1[0]);
      d0[0] = v;
      any |= v <= eps_sq;
      i = 1;
    }
    for (; i <= hi; ++i) {
      const double dx = q.x[i] - rx[static_cast<std::ptrdiff_t>(i) + c];
      const double dy = q.y[i] - ry[static_cast<std::ptrdiff_t>(i) + c];
      const double d = dx * dx + dy * dy;
      const double reach = std::min(std::min(d1[i - 1], d1[i]), d2[i - 1]);
      const double v = reach > d ? reach : d;
      d0[i] = v;
      any |= v <= eps_sq;
    }
    if (any == 0 && !prev_any) return false;
    prev_any = any != 0;
    double* tmp = d2;
    d2 = d1;
    d1 = d0;
    d0 = tmp;
  }
  if (d1[n - 1] > eps_sq) return false;
  *distance = std::sqrt(d1[n - 1]);
  return true;
}

double HausdorffFlat(const FlatView& q, const FlatView& t) {
  assert(q.n > 0 && t.n > 0);
  bool exceeded = false;
  double h = DirectedHausdorffSq(q, t, 0.0, kInf, &exceeded);
  h = DirectedHausdorffSq(t, q, h, kInf, &exceeded);
  return std::sqrt(h);
}

bool HausdorffWithinDistanceFlat(const FlatView& q, const FlatView& t,
                                 double eps, double* distance) {
  assert(q.n > 0 && t.n > 0);
  const double eps_sq = eps * eps;
  bool exceeded = false;
  double h = DirectedHausdorffSq(q, t, 0.0, eps_sq, &exceeded);
  if (exceeded) return false;
  h = DirectedHausdorffSq(t, q, h, eps_sq, &exceeded);
  if (exceeded) return false;
  *distance = std::sqrt(h);
  return true;
}

// Anti-diagonal wavefront like DiscreteFrechetFlat above; +inf padding
// plays the same role (inf + d stays inf, so invalid predecessors never
// win the min).
double DtwFlat(const FlatView& q, const FlatView& t, DpScratch* scratch) {
  assert(q.n > 0 && t.n > 0);
  const size_t n = q.n;
  const size_t m = t.n;
  scratch->ReserveDiag(n, m);
  double* __restrict d0 = scratch->diag0.data();
  double* __restrict d1 = scratch->diag1.data();
  double* __restrict d2 = scratch->diag2.data();
  double* __restrict rx = scratch->rev_x.data();
  double* __restrict ry = scratch->rev_y.data();
  std::fill(d0, d0 + n, kInf);
  std::fill(d1, d1 + n, kInf);
  std::fill(d2, d2 + n, kInf);
  for (size_t j = 0; j < m; ++j) {
    rx[j] = t.x[m - 1 - j];
    ry[j] = t.y[m - 1 - j];
  }
  for (size_t k = 0; k + 1 < n + m; ++k) {
    const size_t lo = k >= m ? k - m + 1 : 0;
    const size_t hi = std::min(k, n - 1);
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(m) - 1 -
                             static_cast<std::ptrdiff_t>(k);
    size_t i = lo;
    if (lo == 0) {
      const double dx = q.x[0] - t.x[k];
      const double dy = q.y[0] - t.y[k];
      const double d = std::sqrt(dx * dx + dy * dy);
      d0[0] = k == 0 ? d : d + d1[0];
      i = 1;
    }
    for (; i <= hi; ++i) {
      const double dx = q.x[i] - rx[static_cast<std::ptrdiff_t>(i) + c];
      const double dy = q.y[i] - ry[static_cast<std::ptrdiff_t>(i) + c];
      const double d = std::sqrt(dx * dx + dy * dy);
      const double best = std::min(std::min(d1[i - 1], d1[i]), d2[i - 1]);
      d0[i] = best + d;
    }
    double* tmp = d2;
    d2 = d1;
    d1 = d0;
    d0 = tmp;
  }
  return d1[n - 1];
}

bool DtwWithinDistanceFlat(const FlatView& q, const FlatView& t, double eps,
                           double* distance, DpScratch* scratch) {
  assert(q.n > 0 && t.n > 0);
  if (std::isinf(eps) && eps > 0) {
    *distance = DtwFlat(q, t, scratch);
    return true;
  }
  // Wavefront with the same two-consecutive-diagonal abandon as the
  // Fréchet kernel: DTW cost is d + min(predecessors) with d >= 0, so it
  // never shrinks downstream of two diagonals that already exceed eps.
  const size_t n = q.n;
  const size_t m = t.n;
  scratch->ReserveDiag(n, m);
  double* __restrict d0 = scratch->diag0.data();
  double* __restrict d1 = scratch->diag1.data();
  double* __restrict d2 = scratch->diag2.data();
  double* __restrict rx = scratch->rev_x.data();
  double* __restrict ry = scratch->rev_y.data();
  std::fill(d0, d0 + n, kInf);
  std::fill(d1, d1 + n, kInf);
  std::fill(d2, d2 + n, kInf);
  for (size_t j = 0; j < m; ++j) {
    rx[j] = t.x[m - 1 - j];
    ry[j] = t.y[m - 1 - j];
  }
  bool prev_any = true;
  for (size_t k = 0; k + 1 < n + m; ++k) {
    const size_t lo = k >= m ? k - m + 1 : 0;
    const size_t hi = std::min(k, n - 1);
    const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(m) - 1 -
                             static_cast<std::ptrdiff_t>(k);
    size_t i = lo;
    int any = 0;
    if (lo == 0) {
      const double dx = q.x[0] - t.x[k];
      const double dy = q.y[0] - t.y[k];
      const double d = std::sqrt(dx * dx + dy * dy);
      const double v = k == 0 ? d : d + d1[0];
      d0[0] = v;
      any |= v <= eps;
      i = 1;
    }
    for (; i <= hi; ++i) {
      const double dx = q.x[i] - rx[static_cast<std::ptrdiff_t>(i) + c];
      const double dy = q.y[i] - ry[static_cast<std::ptrdiff_t>(i) + c];
      const double d = std::sqrt(dx * dx + dy * dy);
      const double best = std::min(std::min(d1[i - 1], d1[i]), d2[i - 1]);
      const double v = best + d;
      d0[i] = v;
      any |= v <= eps;
    }
    if (any == 0 && !prev_any) return false;
    prev_any = any != 0;
    double* tmp = d2;
    d2 = d1;
    d1 = d0;
    d0 = tmp;
  }
  if (d1[n - 1] > eps) return false;
  *distance = d1[n - 1];
  return true;
}

double SimilarityFlat(Measure m, const FlatView& q, const FlatView& t,
                      DpScratch* scratch) {
  switch (m) {
    case Measure::kFrechet:
      return DiscreteFrechetFlat(q, t, scratch);
    case Measure::kHausdorff:
      return HausdorffFlat(q, t);
    case Measure::kDtw:
      return DtwFlat(q, t, scratch);
  }
  return kInf;
}

bool SimilarityWithinDistanceFlat(Measure m, const FlatView& q,
                                  const FlatView& t, double eps,
                                  double* distance, DpScratch* scratch) {
  switch (m) {
    case Measure::kFrechet:
      return FrechetWithinDistanceFlat(q, t, eps, distance, scratch);
    case Measure::kHausdorff:
      return HausdorffWithinDistanceFlat(q, t, eps, distance);
    case Measure::kDtw:
      return DtwWithinDistanceFlat(q, t, eps, distance, scratch);
  }
  return false;
}

}  // namespace core
}  // namespace trass
