#include "core/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace trass {
namespace core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double DiscreteFrechet(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  // Rolling-row DP over squared distances; max/min commute with sqrt.
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::DistanceSquared(q[0], t[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::DistanceSquared(q[i], t[0]));
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, geo::DistanceSquared(q[i], t[j]));
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m - 1]);
}

bool FrechetWithin(const std::vector<geo::Point>& q,
                   const std::vector<geo::Point>& t, double eps) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  const double eps_sq = eps * eps;
  std::vector<double> prev(m), curr(m);
  for (size_t j = 0; j < m; ++j) {
    const double d = geo::DistanceSquared(q[0], t[j]);
    prev[j] = j == 0 ? d : std::max(prev[j - 1], d);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::DistanceSquared(q[i], t[0]));
    bool any_within = curr[0] <= eps_sq;
    for (size_t j = 1; j < m; ++j) {
      const double reach = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = std::max(reach, geo::DistanceSquared(q[i], t[j]));
      any_within = any_within || curr[j] <= eps_sq;
    }
    if (!any_within) return false;  // every path already exceeds eps
    std::swap(prev, curr);
  }
  return prev[m - 1] <= eps_sq;
}

double Hausdorff(const std::vector<geo::Point>& q,
                 const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  auto directed = [](const std::vector<geo::Point>& a,
                     const std::vector<geo::Point>& b, double best_so_far) {
    double result = best_so_far;
    for (const geo::Point& pa : a) {
      double nearest = kInf;
      for (const geo::Point& pb : b) {
        nearest = std::min(nearest, geo::DistanceSquared(pa, pb));
        if (nearest <= result) break;  // cannot raise the max
      }
      result = std::max(result, nearest);
    }
    return result;
  };
  double h = directed(q, t, 0.0);
  h = directed(t, q, h);
  return std::sqrt(h);
}

bool HausdorffWithin(const std::vector<geo::Point>& q,
                     const std::vector<geo::Point>& t, double eps) {
  const double eps_sq = eps * eps;
  auto directed_within = [eps_sq](const std::vector<geo::Point>& a,
                                  const std::vector<geo::Point>& b) {
    for (const geo::Point& pa : a) {
      bool found = false;
      for (const geo::Point& pb : b) {
        if (geo::DistanceSquared(pa, pb) <= eps_sq) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  };
  return directed_within(q, t) && directed_within(t, q);
}

double Dtw(const std::vector<geo::Point>& q,
           const std::vector<geo::Point>& t) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  std::vector<double> prev(m), curr(m);
  prev[0] = geo::Distance(q[0], t[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(q[0], t[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = prev[0] + geo::Distance(q[i], t[0]);
    for (size_t j = 1; j < m; ++j) {
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + geo::Distance(q[i], t[j]);
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

bool DtwWithin(const std::vector<geo::Point>& q,
               const std::vector<geo::Point>& t, double eps) {
  assert(!q.empty() && !t.empty());
  const size_t n = q.size();
  const size_t m = t.size();
  std::vector<double> prev(m), curr(m);
  prev[0] = geo::Distance(q[0], t[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + geo::Distance(q[0], t[j]);
  }
  for (size_t i = 1; i < n; ++i) {
    curr[0] = prev[0] + geo::Distance(q[i], t[0]);
    double row_min = curr[0];
    for (size_t j = 1; j < m; ++j) {
      const double best = std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = best + geo::Distance(q[i], t[j]);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > eps) return false;  // DTW cost only grows downstream
    std::swap(prev, curr);
  }
  return prev[m - 1] <= eps;
}

double Similarity(Measure m, const std::vector<geo::Point>& q,
                  const std::vector<geo::Point>& t) {
  switch (m) {
    case Measure::kFrechet:
      return DiscreteFrechet(q, t);
    case Measure::kHausdorff:
      return Hausdorff(q, t);
    case Measure::kDtw:
      return Dtw(q, t);
  }
  return kInf;
}

bool SimilarityWithin(Measure m, const std::vector<geo::Point>& q,
                      const std::vector<geo::Point>& t, double eps) {
  switch (m) {
    case Measure::kFrechet:
      return FrechetWithin(q, t, eps);
    case Measure::kHausdorff:
      return HausdorffWithin(q, t, eps);
    case Measure::kDtw:
      return DtwWithin(q, t, eps);
  }
  return false;
}

}  // namespace core
}  // namespace trass
