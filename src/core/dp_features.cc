#include "core/dp_features.h"

#include <algorithm>
#include <limits>

#include "geo/douglas_peucker.h"

namespace trass {
namespace core {

DpFeatures DpFeatures::Compute(const std::vector<geo::Point>& points,
                               double tolerance) {
  DpFeatures features;
  features.rep_indices = geo::DouglasPeucker(points, tolerance);
  features.rep_points.reserve(features.rep_indices.size());
  for (uint32_t idx : features.rep_indices) {
    features.rep_points.push_back(points[idx]);
  }
  if (features.rep_indices.size() >= 2) {
    features.boxes.reserve(features.rep_indices.size() - 1);
    for (size_t i = 0; i + 1 < features.rep_indices.size(); ++i) {
      const uint32_t first = features.rep_indices[i];
      const uint32_t last = features.rep_indices[i + 1];
      features.boxes.push_back(geo::OrientedBox::Cover(
          points, first, last, points[first], points[last]));
    }
  }
  return features;
}

DpFeatures DpFeatures::ComputeCapped(const std::vector<geo::Point>& points,
                                     double tolerance,
                                     size_t max_rep_points) {
  if (max_rep_points < 2) max_rep_points = 2;
  DpFeatures features = Compute(points, tolerance);
  while (features.rep_indices.size() > max_rep_points) {
    tolerance *= 2.0;
    features = Compute(points, tolerance);
  }
  return features;
}

double DpFeatures::DistancePointToBoxes(const geo::Point& p) const {
  if (boxes.empty()) {
    // Single-point trajectory: the only "box" is the point itself.
    if (rep_points.empty()) return std::numeric_limits<double>::infinity();
    return geo::Distance(p, rep_points.front());
  }
  double best = std::numeric_limits<double>::infinity();
  for (const geo::OrientedBox& box : boxes) {
    best = std::min(best, box.Distance(p));
    if (best == 0.0) break;
  }
  return best;
}

double BoxToFeatureDistance(const geo::OrientedBox& box,
                            const DpFeatures& target) {
  double worst_edge = 0.0;
  for (int e = 0; e < 4; ++e) {
    const geo::Point& a = box.corner(e);
    const geo::Point& b = box.corner((e + 1) % 4);
    double nearest = std::numeric_limits<double>::infinity();
    if (target.boxes.empty()) {
      if (!target.rep_points.empty()) {
        nearest = geo::PointSegmentDistance(target.rep_points.front(), a, b);
      }
    } else {
      for (const geo::OrientedBox& tb : target.boxes) {
        nearest = std::min(nearest, tb.SegmentDistance(a, b));
        if (nearest == 0.0) break;
      }
    }
    worst_edge = std::max(worst_edge, nearest);
  }
  return worst_edge;
}

}  // namespace core
}  // namespace trass
