// AdmissionController: overload protection for the query serving path.
//
// A fixed number of queries run concurrently; a bounded number more may
// wait in an admission queue (FIFO by condition-variable wakeup) for up
// to a queue timeout. Everything beyond that is shed immediately with
// Status::Busy — overload turns into fast rejections the client can
// retry against another replica, instead of a convoy that collapses
// tail latency for everyone (the ROADMAP's "millions of users" failure
// mode). Counters expose admitted/queued/shed totals for dashboards and
// the Figure 18 bench's shed-rate column.

#ifndef TRASS_CORE_ADMISSION_H_
#define TRASS_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace trass {
namespace core {

class AdmissionController {
 public:
  struct Options {
    /// Queries allowed in flight at once; 0 disables admission control
    /// entirely (every Admit succeeds immediately).
    int max_concurrent = 0;
    /// Callers allowed to wait for a slot beyond the concurrency limit;
    /// 0 sheds immediately when all slots are busy.
    int max_queue = 0;
    /// Longest a queued caller waits before being shed.
    double queue_timeout_ms = 100.0;
  };

  struct Counters {
    uint64_t admitted = 0;         // queries granted a slot
    uint64_t queued = 0;           // admissions that had to wait first
    uint64_t shed_queue_full = 0;  // rejected: queue already full
    uint64_t shed_timeout = 0;     // rejected: queue wait timed out
    uint64_t sheds() const { return shed_queue_full + shed_timeout; }
  };

  explicit AdmissionController(const Options& options)
      : options_(options) {}

  /// Blocks until a slot is free (at most queue_timeout_ms, and only if
  /// a queue position is free), then claims it. Returns OK (caller MUST
  /// later call Release exactly once) or Busy (caller must not).
  /// `waited_ms`, when non-null, receives the time spent queued.
  Status Admit(double* waited_ms = nullptr);

  /// Returns a slot claimed by a successful Admit.
  void Release();

  /// Replaces the limits. Safe at any time: queries already in flight
  /// or queued finish under their admission; new limits govern new
  /// arrivals. Shrinking max_concurrent below in_flight just delays new
  /// admissions until enough releases happen.
  void Configure(const Options& options);

  Counters counters() const;
  int in_flight() const;
  Options options() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  Options options_;
  int in_flight_ = 0;
  int waiting_ = 0;
  Counters counters_;
};

/// RAII admission slot: releases on destruction iff Admit succeeded.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller,
                         double* waited_ms = nullptr)
      : controller_(controller), status_(controller->Admit(waited_ms)) {}
  ~AdmissionSlot() {
    if (status_.ok()) controller_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  const Status& status() const { return status_; }

 private:
  AdmissionController* controller_;
  Status status_;
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_ADMISSION_H_
