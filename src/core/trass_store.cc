#include "core/trass_store.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <mutex>
#include <queue>

#include "core/local_filter.h"
#include "core/similarity.h"
#include "index/xz2.h"  // MergeRanges
#include "util/stopwatch.h"

namespace trass {
namespace core {

namespace {

// Fibonacci hashing of the trajectory id; the paper's `shards` component
// exists to spread consecutive ids over regions.
uint64_t HashId(uint64_t id) { return id * 0x9e3779b97f4a7c15ull; }

// Folds a fan-out scan's availability outcome into the query metrics so
// callers can tell a complete answer from a degraded one.
void FoldScanReport(const kv::ScanReport& report, QueryMetrics* m) {
  m->partial = m->partial || !report.complete();
  m->skipped_regions += report.skipped.size();
  m->scan_retries += report.retries;
  m->replica_failovers += report.failovers;
  m->block_cache_hits += report.cache_hits;
  m->block_cache_misses += report.cache_misses;
  m->block_cache_fills += report.cache_fills;
  m->readahead_reads += report.readahead_reads;
  m->readahead_bytes_read += report.readahead_bytes_read;
}

std::vector<kv::ScanRange> ToScanRanges(
    const std::vector<std::pair<int64_t, int64_t>>& value_ranges) {
  std::vector<kv::ScanRange> ranges;
  ranges.reserve(value_ranges.size());
  for (const auto& [lo, hi] : value_ranges) {
    kv::ScanRange range;
    IndexValueRange(lo, hi, &range.start, &range.end);
    ranges.push_back(std::move(range));
  }
  return ranges;
}

// Folds one refinement-engine run's counters into the query metrics.
void FoldRefineStats(const RefineStats& stats, size_t threads,
                     QueryMetrics* m) {
  m->refined += stats.refined;
  m->lb_rejected += stats.lb_rejected;
  m->refine_dp_runs += stats.dp_runs;
  m->refine_decode_ms += stats.decode_ms;
  m->refine_lb_ms += stats.lb_ms;
  m->refine_dp_ms += stats.dp_ms;
  m->refine_threads = threads;
}

// Folds filter-tier probe counters into the query metrics.
void FoldFilterStats(const filter::ProbeStats& stats, QueryMetrics* m) {
  m->filter_elements_pruned += stats.elements_pruned;
  m->filter_mbr_pruned += stats.mbr_pruned;
  m->fingerprint_skips += stats.fingerprint_skips;
}

filter::FilterTierOptions MakeFilterOptions(const TrassOptions& options) {
  filter::FilterTierOptions f;
  f.enable = options.filter_tier.enable;
  f.fingerprints = options.filter_tier.fingerprints;
  f.fingerprint.hashes = options.filter_tier.fingerprint_hashes;
  f.fingerprint.bits = options.filter_tier.fingerprint_bits;
  f.fingerprint.grid = options.filter_tier.fingerprint_grid;
  f.rebuild_on_scrub = options.filter_tier.rebuild_on_scrub;
  return f;
}

// Arms a QueryContext from the caller's per-query options.
void ArmControl(const QueryOptions& query_options, QueryContext* control) {
  control->SetDeadlineAfterMillis(query_options.deadline_ms);
  if (query_options.cancel != nullptr) {
    control->SetCancelFlag(query_options.cancel);
  }
  control->SetCandidateBudget(query_options.max_candidates);
}

// Collects row keys server-side without materializing values (used to
// rebuild ingest state when opening an existing store).
class KeyCollectorFilter final : public kv::ScanFilter {
 public:
  bool Keep(const Slice& key, const Slice&) const override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_.push_back(key.ToString());
    return false;  // drop the row; only the key matters
  }

  std::vector<std::string> TakeKeys() { return std::move(keys_); }

 private:
  mutable std::mutex mu_;
  mutable std::vector<std::string> keys_;
};

// Pushdown filter for the spatial range query: keep rows with at least
// one point inside the window.
class WindowScanFilter final : public kv::ScanFilter {
 public:
  explicit WindowScanFilter(const geo::Mbr& window) : window_(window) {}

  bool Keep(const Slice& key, const Slice& value) const override {
    scanned_.fetch_add(1, std::memory_order_relaxed);
    StoredTrajectory t;
    if (!DecodeRow(key, value, &t).ok()) return false;
    for (const geo::Point& p : t.points) {
      if (window_.Contains(p)) return true;
    }
    return false;
  }

  uint64_t scanned() const { return scanned_.load(); }

 private:
  const geo::Mbr window_;
  mutable std::atomic<uint64_t> scanned_{0};
};

}  // namespace

TrassStore::TrassStore(const TrassOptions& options)
    : options_(options),
      xz_(options.max_resolution),
      resolution_histogram_(options.max_resolution + 1, 0),
      position_histogram_(11, 0),
      directory_(std::make_shared<std::vector<int64_t>>()) {
  AdmissionController::Options admission;
  admission.max_concurrent = options.max_concurrent_queries;
  admission.max_queue = options.admission_queue;
  admission.queue_timeout_ms = options.admission_queue_timeout_ms;
  admission_.Configure(admission);
}

Status TrassStore::Open(const TrassOptions& options, const std::string& path,
                        std::unique_ptr<TrassStore>* store) {
  store->reset();
  if (options.shards < 1 || options.shards > 256) {
    return Status::InvalidArgument("shards must be in [1, 256]");
  }
  if (options.max_resolution < 1 ||
      options.max_resolution > index::XzStar::kMaxResolution) {
    return Status::InvalidArgument("max_resolution out of range");
  }
  std::unique_ptr<TrassStore> impl(new TrassStore(options));
  kv::RegionStore::RegionOptions region_options;
  region_options.db_options = options.db_options;
  // Space watermarks are store-level knobs threaded into every replica
  // database (each polls free space on its own write path).
  region_options.db_options.soft_space_watermark_bytes =
      options.soft_space_watermark_bytes;
  region_options.db_options.hard_space_watermark_bytes =
      options.hard_space_watermark_bytes;
  region_options.num_regions = options.shards;
  region_options.scan_threads = options.scan_threads;
  region_options.degraded_scans = options.degraded_scans;
  region_options.max_scan_retries = options.max_scan_retries;
  region_options.retry_backoff_ms = options.scan_retry_backoff_ms;
  region_options.replication_factor = options.replication_factor;
  region_options.replica_demote_threshold = options.replica_demote_threshold;
  region_options.replica_probe_interval = options.replica_probe_interval;
  Status s = kv::RegionStore::Open(region_options, path, &impl->store_);
  if (!s.ok()) return s;
  if (options.refine_threads > 1) {
    impl->refine_pool_ = std::make_unique<ThreadPool>(options.refine_threads);
  }
  impl->refiner_ = std::make_unique<Refiner>(impl->refine_pool_.get(),
                                             options.refine_threads);
  // Queries are unsupported in string-key mode, so a filter tier there
  // would only cost RAM.
  if (options.filter_tier.enable && !options.string_keys) {
    impl->filter_tier_ =
        std::make_unique<filter::FilterTier>(MakeFilterOptions(options));
  }
  s = impl->RebuildIngestState();
  if (!s.ok()) return s;
  ingest::IngestOptions ingest_options;
  ingest_options.queue_capacity = options.ingest_queue_capacity;
  ingest_options.batch_max_rows = options.ingest_batch_max_rows;
  ingest_options.batch_linger_ms = options.ingest_batch_linger_ms;
  ingest_options.encode_threads = options.ingest_encode_threads;
  // The raw pointer outlives the pipeline: pipeline_ is the last member,
  // so its destructor (which drains through these callbacks) runs while
  // the rest of the store is still alive.
  TrassStore* raw = impl.get();
  impl->pipeline_ = std::make_unique<ingest::IngestPipeline>(
      ingest_options,
      [raw](const Trajectory& t, ingest::EncodedRow* row) {
        return raw->EncodeTrajectory(t, row);
      },
      [raw](std::vector<ingest::EncodedRow>* rows) {
        return raw->CommitEncoded(rows);
      });
  if (options.auto_resume_interval_ms > 0) {
    impl->resumer_ = std::thread([raw] { raw->AutoResumeLoop(); });
  }
  *store = std::move(impl);
  return Status::OK();
}

TrassStore::~TrassStore() {
  if (resumer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(resume_mu_);
      stop_resumer_ = true;
    }
    resume_cv_.notify_all();
    resumer_.join();
  }
  // Bounded teardown: if the store is wedged read-only, every queued
  // ingest ticket is doomed — arm the pipeline's fail-fast drain so its
  // destructor (which runs next, pipeline_ being the last member)
  // resolves the backlog with the sticky error instead of pushing
  // stall-throttled writes at a broken disk.
  if (pipeline_ != nullptr && store_ != nullptr &&
      store_->WritesDegraded(options_.ingest_min_ack_replicas)) {
    Status wedged = store_->FirstBackgroundError();
    if (wedged.ok()) wedged = Status::Busy("store degraded at shutdown");
    pipeline_->FailPending(wedged.WithContext("shutdown drain"));
  }
}

void TrassStore::AutoResumeLoop() {
  std::unique_lock<std::mutex> lock(resume_mu_);
  for (;;) {
    resume_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.auto_resume_interval_ms),
        [&] { return stop_resumer_; });
    if (stop_resumer_) return;
    lock.unlock();
    // Probe only when something is actually wedged; Resume() itself is
    // serialized against the write paths.
    if (store_->ReadOnlyReplicas() > 0) (void)Resume();
    lock.lock();
  }
}

Status TrassStore::RebuildIngestState() {
  // Re-opening an existing store: reconstruct the value directory and the
  // ingest statistics from the stored row keys (a full key scan, done
  // once at open — the moral equivalent of reading region metadata).
  KeyCollectorFilter collector;
  std::vector<kv::Row> ignored;
  Status s = store_->Scan({kv::ScanRange{"", ""}}, &collector, &ignored);
  if (!s.ok()) return s;
  uint64_t count = 0;
  uint64_t key_bytes = 0;
  std::lock_guard<std::mutex> lock(values_mu_);
  for (const std::string& key : collector.TakeKeys()) {
    if (options_.string_keys) {  // stats only in integer mode
      ++count;
      key_bytes += key.size();
      continue;
    }
    uint8_t shard;
    int64_t value;
    uint64_t tid;
    s = DecodeRowKey(Slice(key), &shard, &value, &tid);
    if (!s.ok()) return s;
    seen_values_.push_back(value);
    // Distinct row keys normally mean distinct ids; the guard mirrors
    // CommitEncoded so a recovered store counts ids, not rows.
    if (!seen_ids_.insert(tid).second) continue;
    ++count;
    key_bytes += key.size();
    const index::XzStar::IndexSpace space = xz_.Decode(value);
    resolution_histogram_[space.seq.length()] += 1;
    position_histogram_[space.pos] += 1;
  }
  num_trajectories_.store(count, std::memory_order_relaxed);
  total_key_bytes_.store(key_bytes, std::memory_order_relaxed);
  values_dirty_ = !seen_values_.empty();
  if (filter_tier_ != nullptr) {
    // Second pass decoding row *values* (the key scan above drops them):
    // per-element aggregates and per-row fingerprints need the points.
    // Open-time only, and the crash-recovery path — whatever rows the
    // WAL replay kept are re-derived into a tier that agrees with the
    // recovered store, never the pre-crash one.
    std::vector<filter::FilterRowData> filter_rows;
    s = CollectFilterRows(&filter_rows);
    if (!s.ok()) return s;
    filter_tier_->RebuildFrom(std::move(filter_rows));
  }
  return Status::OK();
}

Status TrassStore::CollectFilterRows(
    std::vector<filter::FilterRowData>* out) const {
  // Decodes rows server-side into filter records without materializing
  // the scan result (the tier needs summaries, not bytes).
  class Collector final : public kv::ScanFilter {
   public:
    Collector(bool fingerprints, const filter::FingerprintParams& params)
        : fingerprints_(fingerprints), params_(params) {}

    bool Keep(const Slice& key, const Slice& value) const override {
      uint8_t shard;
      filter::FilterRowData row;
      uint64_t tid;
      if (!DecodeRowKey(key, &shard, &row.index_value, &tid).ok()) {
        return false;
      }
      StoredTrajectory t;
      // Undecodable values stay out of the tier; the scan paths drop
      // them the same way, so filter-on/off answers still agree.
      if (!DecodeRow(key, value, &t).ok()) return false;
      row.tid = static_cast<int64_t>(tid);
      row.mbr = geo::Mbr::Of(t.points);
      if (fingerprints_) {
        row.fingerprint = filter::MinhashSignature(t.points, params_);
      }
      std::lock_guard<std::mutex> lock(mu_);
      rows_.push_back(std::move(row));
      return false;
    }

    std::vector<filter::FilterRowData> Take() { return std::move(rows_); }

   private:
    const bool fingerprints_;
    const filter::FingerprintParams params_;
    mutable std::mutex mu_;
    mutable std::vector<filter::FilterRowData> rows_;
  };

  out->clear();
  Collector collector(filter_tier_->options().fingerprints,
                      filter_tier_->options().fingerprint);
  std::vector<kv::Row> ignored;
  Status s = store_->Scan({kv::ScanRange{"", ""}}, &collector, &ignored);
  if (!s.ok()) return s;
  *out = collector.Take();
  return Status::OK();
}

void TrassStore::PublishFilterRows(const std::vector<ingest::EncodedRow>& rows,
                                   const std::vector<char>& applied) {
  if (filter_tier_ == nullptr) return;
  std::vector<filter::FilterRowData> filter_rows;
  filter_rows.reserve(rows.size());
  for (const ingest::EncodedRow& row : rows) {
    if (!applied[row.shard]) continue;
    filter::FilterRowData fr;
    fr.index_value = row.index_value;
    fr.tid = static_cast<int64_t>(row.tid);
    fr.mbr = row.mbr;
    fr.fingerprint = row.fingerprint;
    filter_rows.push_back(std::move(fr));
  }
  filter_tier_->AddRows(filter_rows);
}

uint8_t TrassStore::ShardOf(uint64_t tid) const {
  return static_cast<uint8_t>(HashId(tid) %
                              static_cast<uint64_t>(options_.shards));
}

Status TrassStore::EncodeTrajectory(const Trajectory& trajectory,
                                    ingest::EncodedRow* row) const {
  if (trajectory.points.empty()) {
    return Status::InvalidArgument("trajectory has no points");
  }
  const index::XzStar::IndexSpace space = xz_.Index(trajectory.points);
  const int64_t value = xz_.Encode(space);
  const DpFeatures features =
      DpFeatures::ComputeCapped(trajectory.points, options_.dp_tolerance);
  const uint8_t shard = ShardOf(trajectory.id);
  row->tid = trajectory.id;
  row->shard = shard;
  row->index_value = value;
  row->resolution = space.seq.length();
  row->position_code = space.pos;
  row->key = options_.string_keys
                 ? EncodeStringRowKey(shard, space, trajectory.id)
                 : EncodeRowKey(shard, value, trajectory.id);
  row->value = EncodeRowValue(trajectory.points, features);
  row->mbr = geo::Mbr::Of(trajectory.points);
  if (filter_tier_ != nullptr && options_.filter_tier.fingerprints) {
    row->fingerprint = filter::MinhashSignature(
        trajectory.points, filter_tier_->options().fingerprint);
  }
  return Status::OK();
}

Status TrassStore::CommitEncoded(std::vector<ingest::EncodedRow>* rows) {
  if (rows->empty()) return Status::OK();
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);

  // One WriteBatch per touched region: each becomes a single WAL record
  // per replica (the group-commit win over per-row Put).
  std::vector<kv::WriteBatch> batches(options_.shards);
  std::vector<char> touched(options_.shards, 0);
  for (const ingest::EncodedRow& row : *rows) {
    batches[row.shard].Put(Slice(row.key), Slice(row.value));
    touched[row.shard] = 1;
  }
  Status first_failure;
  std::vector<char> applied(options_.shards, 0);
  for (int shard = 0; shard < options_.shards; ++shard) {
    if (!touched[shard]) continue;
    Status s = store_->ApplyBatch(kv::WriteOptions(), shard, &batches[shard],
                                  options_.ingest_min_ack_replicas);
    if (s.ok()) {
      applied[shard] = 1;
    } else if (first_failure.ok()) {
      first_failure = s;
    }
  }

  // Publish the applied rows' statistics and directory entries. The rows
  // are already readable in the store, so publish-before-watermark makes
  // the whole trajectory (row + features + directory entry) visible
  // atomically from a query's point of view: queries snapshot the
  // directory once, and the pipeline advances the watermark only after
  // this returns. Rows in regions whose apply failed publish nothing —
  // they were never stored.
  uint64_t count = 0;
  uint64_t key_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(values_mu_);
    for (const ingest::EncodedRow& row : *rows) {
      if (!applied[row.shard]) continue;
      // Re-delivery of a stored id (hint replay, duplicated transport
      // delivery) overwrote the identical row above; the directory
      // entry is refreshed but the counters and histograms must not
      // double-count — idempotency is what lets replay be
      // at-least-once.
      if (!seen_ids_.insert(row.tid).second) {
        seen_values_.push_back(row.index_value);
        values_dirty_ = true;
        continue;
      }
      ++count;
      key_bytes += row.key.size();
      resolution_histogram_[row.resolution] += 1;
      position_histogram_[row.position_code] += 1;
      seen_values_.push_back(row.index_value);
      values_dirty_ = true;
    }
  }
  num_trajectories_.fetch_add(count, std::memory_order_relaxed);
  total_key_bytes_.fetch_add(key_bytes, std::memory_order_relaxed);
  // Step 3 of the publish order (rows -> stats -> filter -> watermark):
  // by the time the pipeline advances the watermark past these tickets,
  // the filter tier already covers them — so the tier can never claim
  // emptiness for a watermark-visible row.
  PublishFilterRows(*rows, applied);
  return first_failure;
}

Status TrassStore::Put(const Trajectory& trajectory) {
  std::vector<ingest::EncodedRow> rows(1);
  Status s = EncodeTrajectory(trajectory, &rows[0]);
  if (!s.ok()) return s;
  return CommitEncoded(&rows);
}

Status TrassStore::PutBatch(const std::vector<Trajectory>& trajectories) {
  if (trajectories.empty()) return Status::OK();
  std::vector<ingest::EncodedRow> rows(trajectories.size());
  for (size_t i = 0; i < trajectories.size(); ++i) {
    Status s = EncodeTrajectory(trajectories[i], &rows[i]);
    if (!s.ok()) return s;
  }
  return CommitEncoded(&rows);
}

Status TrassStore::SubmitAsync(Trajectory trajectory, uint64_t max_wait_ms,
                               uint64_t* ticket) {
  // Degraded-write backpressure: a ticket accepted now would only
  // resolve as a commit failure (some region cannot reach its required
  // acks), so shed it where the caller can see — and retry after
  // Resume() — instead of laundering it through the queue.
  if (store_->WritesDegraded(options_.ingest_min_ack_replicas)) {
    Status wedged = store_->FirstBackgroundError();
    return Status::Busy("ingest shed: writes degraded" +
                        (wedged.ok() ? std::string()
                                     : " (" + wedged.ToString() + ")"));
  }
  return pipeline_->Submit(std::move(trajectory), max_wait_ms, ticket);
}

Status TrassStore::WaitForWatermark(uint64_t ticket,
                                    uint64_t timeout_ms) const {
  return pipeline_->WaitForWatermark(ticket, timeout_ms);
}

Status TrassStore::DrainIngest(uint64_t timeout_ms) const {
  return pipeline_->Drain(timeout_ms);
}

uint64_t TrassStore::ingest_watermark() const {
  return pipeline_ != nullptr ? pipeline_->watermark() : 0;
}

ingest::IngestStatsSnapshot TrassStore::ingest_stats() const {
  return pipeline_->stats();
}

Status TrassStore::ingest_last_error() const {
  return pipeline_->last_error();
}

std::shared_ptr<const std::vector<int64_t>> TrassStore::value_directory()
    const {
  // Queries race to perform the lazy sort, so it is serialized here; the
  // published snapshot is immutable, so a query holding it is unaffected
  // by later commits (they publish a *new* snapshot).
  std::lock_guard<std::mutex> lock(values_mu_);
  if (values_dirty_) {
    std::sort(seen_values_.begin(), seen_values_.end());
    seen_values_.erase(std::unique(seen_values_.begin(), seen_values_.end()),
                       seen_values_.end());
    directory_ = std::make_shared<const std::vector<int64_t>>(seen_values_);
    values_dirty_ = false;
  }
  return directory_;
}

uint64_t TrassStore::distinct_index_values() const {
  return value_directory()->size();
}

std::vector<uint64_t> TrassStore::resolution_histogram() const {
  std::lock_guard<std::mutex> lock(values_mu_);
  return resolution_histogram_;
}

std::vector<uint64_t> TrassStore::position_code_histogram() const {
  std::lock_guard<std::mutex> lock(values_mu_);
  return position_histogram_;
}

std::vector<std::pair<int64_t, int64_t>> TrassStore::IntersectWithDirectory(
    const std::vector<std::pair<int64_t, int64_t>>& ranges,
    const std::vector<int64_t>& directory) {
  // Every value inside an input range is a candidate, so within one range
  // the optimal scan is the single interval [first present, last present]:
  // empty candidate values in between cost nothing to scan over. Distinct
  // input ranges are NOT merged — the gap between them holds
  // non-candidate values that may contain rows.
  std::vector<std::pair<int64_t, int64_t>> present;
  for (const auto& [lo, hi] : ranges) {
    const auto first = std::lower_bound(directory.begin(), directory.end(),
                                        lo);
    if (first == directory.end() || *first > hi) continue;
    auto last = std::upper_bound(first, directory.end(), hi);
    --last;
    present.emplace_back(*first, *last);
  }
  index::MergeRanges(&present);
  return present;
}

uint64_t TrassStore::CountPresentValues(
    const std::vector<std::pair<int64_t, int64_t>>& ranges,
    const std::vector<int64_t>& directory) {
  // Ranges are disjoint (post-merge), so present values count once.
  uint64_t count = 0;
  for (const auto& [lo, hi] : ranges) {
    const auto first =
        std::lower_bound(directory.begin(), directory.end(), lo);
    const auto last = std::upper_bound(first, directory.end(), hi);
    count += static_cast<uint64_t>(last - first);
  }
  return count;
}

Status TrassStore::Flush() { return store_->Flush(); }

Status TrassStore::ScrubReplicas(kv::ScrubReport* report) {
  // Serialized against the write paths (CommitEncoded): a rebuild
  // snapshots a source replica and would silently miss rows written
  // while it streams. Group commits queue behind a running scrub;
  // SubmitAsync callers feel it as backpressure, not corruption.
  std::lock_guard<std::mutex> lock(ingest_mu_);
  Status s = store_->ScrubReplicas(report);
  if (s.ok() && filter_tier_ != nullptr &&
      options_.filter_tier.rebuild_on_scrub) {
    // Re-derive the tier from the freshly healed store and count how far
    // the old one had drifted (filter_scrub_mismatches()). ingest_mu_ is
    // held, so no commit can slip rows between the store scan and the
    // tier swap.
    std::vector<filter::FilterRowData> filter_rows;
    Status fs = CollectFilterRows(&filter_rows);
    if (!fs.ok()) return fs;
    filter_scrub_mismatches_.store(
        filter_tier_->ValidateAndRebuild(std::move(filter_rows)),
        std::memory_order_relaxed);
  }
  return s;
}

Status TrassStore::Resume() {
  // Resume writes (fresh WAL, flush, manifest rewrite) into the wedged
  // replicas, so it is a writer like CommitEncoded and ScrubReplicas.
  std::lock_guard<std::mutex> lock(ingest_mu_);
  return store_->Resume();
}

HealthReport TrassStore::Health() const {
  HealthReport report;
  report.regions = store_->HealthSnapshot();
  report.read_only_replicas = store_->ReadOnlyReplicas();
  report.writes_degraded =
      store_->WritesDegraded(options_.ingest_min_ack_replicas);
  Status wedged = store_->FirstBackgroundError();
  if (!wedged.ok()) report.first_background_error = wedged.ToString();
  report.ingest_watermark = ingest_watermark();
  return report;
}

Status TrassStore::ResolveStop(const Status& stop, bool allow_partial,
                               QueryMetrics* m) {
  if (stop.IsTimedOut()) {
    m->deadline_expired = true;
  } else if (stop.IsCancelled()) {
    m->cancelled = true;
  } else if (stop.IsBusy()) {
    m->budget_exhausted = true;
  }
  if (!allow_partial) return stop;
  m->partial = true;
  return Status::OK();
}

Status TrassStore::ThresholdSearch(const std::vector<geo::Point>& query,
                                   double eps, Measure measure,
                                   std::vector<SearchResult>* results,
                                   QueryMetrics* metrics,
                                   const QueryOptions& query_options) {
  results->clear();
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (options_.string_keys) {
    return Status::NotSupported("queries unsupported in string-key mode");
  }
  QueryMetrics local_metrics;
  QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = QueryMetrics();
  m->ingest_watermark = ingest_watermark();
  m->read_only_replicas = store_->ReadOnlyReplicas();
  double waited_ms = 0.0;
  AdmissionSlot slot(&admission_, &waited_ms);
  m->admission_wait_ms = waited_ms;
  if (!slot.status().ok()) return slot.status();
  // The deadline starts after admission: a queued query gets its full
  // budget once it runs (admission_wait_ms records the queueing).
  QueryContext control;
  ArmControl(query_options, &control);
  return ThresholdSearchInternal(query, eps, measure, &control,
                                 query_options.allow_partial, results, m);
}

Status TrassStore::ThresholdSearchInternal(
    const std::vector<geo::Point>& query, double eps, Measure measure,
    const QueryContext* control, bool allow_partial,
    std::vector<SearchResult>* results, QueryMetrics* m) {
  Stopwatch total;

  // Global pruning (Algorithm 1), data-directed via the value directory.
  // One immutable directory snapshot serves the whole query (snapshot
  // consistency under concurrent ingest).
  Stopwatch phase;
  const auto directory = value_directory();
  // Filter snapshot second: the tier only grows under ingest, so taking
  // it after the directory makes it a superset — "absent in the tier"
  // then soundly means "empty element" for every directory value.
  const auto fsnap = FilterSnapshotForQuery();
  const QueryGeometry ctx = QueryGeometry::Make(query, options_.dp_tolerance);
  GlobalPruner pruner(&xz_, &ctx, directory.get(), control);
  const auto value_ranges = pruner.CandidateRanges(eps);
  // Skip ranges the value directory proves empty (free in HBase, a real
  // round-trip here).
  auto present_ranges = IntersectWithDirectory(value_ranges, *directory);
  // Filter tier: kill surviving values whose aggregate (or every
  // per-row) MBR is provably farther than eps, splitting the scan
  // ranges at the kills so their bytes are never read.
  filter::ProbeStats filter_stats;
  if (fsnap != nullptr) {
    m->filter_memory_bytes = fsnap->memory_bytes();
    std::vector<std::pair<int64_t, int64_t>> filtered;
    Status fs = fsnap->ProbeRanges(present_ranges, ctx.mbr, eps,
                                   /*check_rows=*/true, control, &filtered,
                                   &filter_stats);
    FoldFilterStats(filter_stats, m);
    if (!fs.ok()) {
      m->total_ms = total.ElapsedMillis();
      return ResolveStop(fs, allow_partial, m);
    }
    present_ranges = std::move(filtered);
  }
  m->pruning_ms = phase.ElapsedMillis();
  m->scan_ranges = present_ranges.size();
  m->index_values = CountPresentValues(present_ranges, *directory);
  if (Status stop = control->Check(); !stop.ok()) {
    // An abandoned traversal leaves the ranges incomplete; nothing has
    // been verified yet, so even a partial answer is empty.
    m->total_ms = total.ElapsedMillis();
    return ResolveStop(stop, allow_partial, m);
  }

  // Scan with the local filter pushed down (Algorithm 2 + 3).
  phase.Reset();
  LocalScanFilter filter(&ctx, eps, measure);
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s = store_->Scan(ToScanRanges(present_ranges), &filter, &rows,
                          &report, control);
  FoldScanReport(report, m);
  m->scan_ms = phase.ElapsedMillis();
  m->retrieved = filter.scanned();
  m->candidates = filter.kept();
  if (s.IsQueryStop()) {
    m->total_ms = total.ElapsedMillis();
    return ResolveStop(s, allow_partial, m);
  }
  if (!s.ok()) return s;

  // Refine: the engine decodes the survivors into SoA buffers and runs
  // the exact kernels in parallel (lower-bound cascade first, one
  // within-distance DP per survivor instead of the old Within + exact
  // pair), stopping cooperatively — everything verified so far is a
  // sound (if partial) answer.
  phase.Reset();
  const RefineQuery refine_query = RefineQuery::Make(query);
  RefineStats refine_stats;
  Status stopped = refiner_->RefineThreshold(refine_query, eps, measure,
                                             rows, control, results,
                                             &refine_stats);
  FoldRefineStats(refine_stats, refiner_->threads(), m);
  m->refine_ms = phase.ElapsedMillis();
  std::sort(results->begin(), results->end());
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  if (stopped.IsQueryStop()) return ResolveStop(stopped, allow_partial, m);
  return stopped;
}

Status TrassStore::TopKSearch(const std::vector<geo::Point>& query, int k,
                              Measure measure,
                              std::vector<SearchResult>* results,
                              QueryMetrics* metrics,
                              const QueryOptions& query_options) {
  results->clear();
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (k <= 0) return Status::OK();
  if (options_.string_keys) {
    return Status::NotSupported("queries unsupported in string-key mode");
  }
  QueryMetrics local_metrics;
  QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = QueryMetrics();
  m->ingest_watermark = ingest_watermark();
  m->read_only_replicas = store_->ReadOnlyReplicas();
  double waited_ms = 0.0;
  AdmissionSlot slot(&admission_, &waited_ms);
  m->admission_wait_ms = waited_ms;
  if (!slot.status().ok()) return slot.status();
  QueryContext control;
  ArmControl(query_options, &control);
  return TopKSearchInternal(query, k, measure, &control,
                            query_options.allow_partial, results, m);
}

Status TrassStore::TopKSearchInternal(const std::vector<geo::Point>& query,
                                      int k, Measure measure,
                                      const QueryContext* control,
                                      bool allow_partial,
                                      std::vector<SearchResult>* results,
                                      QueryMetrics* m) {
  Stopwatch total;

  const auto directory = value_directory();  // one snapshot per query
  // Taken after the directory so the tier is a superset of it (see
  // ThresholdSearchInternal).
  const auto fsnap = FilterSnapshotForQuery();
  filter::ProbeStats filter_stats;
  // Query-side minhash signature, computed once: orders candidate rows
  // by estimated sketch similarity so likely winners refine first.
  std::vector<uint32_t> query_sig;
  if (fsnap != nullptr) {
    m->filter_memory_bytes = fsnap->memory_bytes();
    if (fsnap->has_fingerprints()) {
      query_sig =
          filter::MinhashSignature(query, fsnap->fingerprint_params());
    }
  }
  const QueryGeometry ctx = QueryGeometry::Make(query, options_.dp_tolerance);
  GlobalPruner pruner(&xz_, &ctx, directory.get(), control);
  const int r = xz_.max_resolution();

  struct ElementEntry {
    double bound;
    index::QuadSeq seq;
    bool operator>(const ElementEntry& other) const {
      return bound > other.bound;
    }
  };
  struct SpaceEntry {
    double bound;
    int64_t value;
    bool operator>(const SpaceEntry& other) const {
      return bound > other.bound;
    }
  };
  std::priority_queue<ElementEntry, std::vector<ElementEntry>,
                      std::greater<ElementEntry>>
      element_queue;  // the paper's EQ
  std::priority_queue<SpaceEntry, std::vector<SpaceEntry>,
                      std::greater<SpaceEntry>>
      space_queue;  // the paper's IQ

  // Shared top-k refinement session: the monotonically tightening k-th
  // distance bound it maintains doubles as the best-first exploration's
  // pruning eps, so a refine worker's improvement immediately shrinks
  // both the other workers' early-abandon threshold and the frontier.
  const RefineQuery refine_query = RefineQuery::Make(query);
  TopKRefiner topk(refiner_.get(), &refine_query, static_cast<size_t>(k),
                   measure);
  auto current_eps = [&]() { return topk.CurrentBound(); };

  // An element is only worth expanding when some stored trajectory lives
  // in its subtree of index values (value-directory check); this bounds
  // the best-first exploration by the data, not by 4^r.
  auto subtree_has_values = [&](const index::QuadSeq& seq) {
    const int64_t base = xz_.ElementBaseValue(seq);
    const int64_t span =
        seq.length() == 0 ? 10 : xz_.NumIndexSpaces(seq.length());
    if (!SortedContainsRange(*directory, base, base + span - 1)) {
      return false;
    }
    // Filter tier: the union MBR over the subtree's present values
    // (segment tree) can kill the whole subtree long before its element
    // bound would — the current k-th bound only tightens, so the skip
    // stays valid for the rest of the query.
    return fsnap == nullptr ||
           fsnap->ProbeSubtree(base, base + span - 1, ctx.mbr,
                               current_eps(),
                               &filter_stats) == filter::ProbeResult::kKeep;
  };

  // Seed with the root overflow bucket and the four top-level elements.
  if (subtree_has_values(index::QuadSeq())) {
    element_queue.push(ElementEntry{0.0, index::QuadSeq()});
  }
  for (int q = 0; q < 4; ++q) {
    const index::QuadSeq child = index::QuadSeq().Child(q);
    if (subtree_has_values(child)) {
      element_queue.push(
          ElementEntry{pruner.ElementLowerBound(child), child});
    }
  }

  Stopwatch phase;
  double pruning_ms = 0.0;
  // Best-first exploration is the deadline's natural ally: everything
  // already in the result heap is exact, so a cooperative stop yields
  // the best k' trajectories found so far.
  Status stopped;
  while (!element_queue.empty() || !space_queue.empty()) {
    if (Status stop = control->Check(); !stop.ok()) {
      stopped = stop;
      break;
    }
    const double eps = current_eps();
    const double best_element =
        element_queue.empty() ? std::numeric_limits<double>::infinity()
                              : element_queue.top().bound;
    const double best_space =
        space_queue.empty() ? std::numeric_limits<double>::infinity()
                            : space_queue.top().bound;
    if (std::min(best_element, best_space) > eps) break;

    if (best_space <= best_element) {
      // Fetch the nearest unexplored index spaces. Every space whose
      // bound is below the element frontier would be popped before any
      // new space can appear, so draining a batch of them into one store
      // round-trip is equivalent to popping them one by one (minus the
      // per-scan overhead that otherwise dominates the tail latency).
      constexpr size_t kBatch = 16;
      size_t drained = 0;  // index spaces submitted to the scan
      std::vector<std::pair<int64_t, int64_t>> batch_values;
      while (!space_queue.empty() && batch_values.size() < kBatch &&
             space_queue.top().bound <= best_element &&
             space_queue.top().bound <= current_eps()) {
        const int64_t value = space_queue.top().value;
        space_queue.pop();
        // Re-probe at drain time: the k-th bound may have tightened
        // since this space was pushed, and the row-level proof gets its
        // chance here. A space the filter kills is never submitted and
        // — per the index_values contract in metrics.h — not counted.
        if (fsnap != nullptr) {
          const filter::ProbeResult probe =
              fsnap->ProbeValue(value, ctx.mbr, current_eps(),
                                /*check_rows=*/true, &filter_stats);
          if (probe == filter::ProbeResult::kMbrPruned ||
              probe == filter::ProbeResult::kFingerprintPruned) {
            continue;
          }
        }
        batch_values.emplace_back(value, value);
        ++drained;
      }
      index::MergeRanges(&batch_values);
      pruning_ms += phase.ElapsedMillis();
      phase.Reset();
      if (batch_values.empty()) continue;  // whole batch filter-pruned
      LocalScanFilter filter(&ctx, current_eps(), measure);
      std::vector<kv::Row> rows;
      kv::ScanReport report;
      Status s = store_->Scan(ToScanRanges(batch_values), &filter, &rows,
                              &report, control);
      FoldScanReport(report, m);
      m->retrieved += filter.scanned();
      m->candidates += filter.kept();
      m->index_values += drained;
      m->scan_ms += phase.ElapsedMillis();
      phase.Reset();
      if (s.IsQueryStop()) {
        stopped = s;
        break;
      }
      if (!s.ok()) return s;
      if (!query_sig.empty() && rows.size() > 1) {
        // Order the batch by estimated sketch similarity (descending):
        // likely winners refine first, tightening the shared k-th bound
        // sooner so later rows fall to the refiner's existing
        // lower-bound prune. Ordering only — the refiner's answer is
        // offer-order invariant, so results stay byte-identical.
        std::vector<std::pair<double, size_t>> order(rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          double sim = 0.0;
          uint8_t shard;
          int64_t value;
          uint64_t tid;
          if (DecodeRowKey(Slice(rows[i].key), &shard, &value, &tid).ok()) {
            size_t count = 0;
            const filter::RowRecord* records =
                fsnap->RowsForValue(value, &count);
            const filter::RowRecord* end = records + count;
            const filter::RowRecord* hit = std::lower_bound(
                records, end, static_cast<int64_t>(tid),
                [](const filter::RowRecord& record, int64_t t) {
                  return record.tid < t;
                });
            if (hit != end && hit->tid == static_cast<int64_t>(tid)) {
              sim = filter::EstimateSimilarity(query_sig.data(),
                                               fsnap->RowSignature(hit),
                                               query_sig.size());
            }
          }
          order[i] = {-sim, i};
        }
        std::stable_sort(order.begin(), order.end());
        std::vector<kv::Row> reordered;
        reordered.reserve(rows.size());
        for (const auto& entry : order) {
          reordered.push_back(std::move(rows[entry.second]));
        }
        rows = std::move(reordered);
      }
      RefineStats refine_stats;
      Status rs = topk.RefineBatch(rows, control, &refine_stats);
      FoldRefineStats(refine_stats, refiner_->threads(), m);
      m->refine_ms += phase.ElapsedMillis();
      phase.Reset();
      if (rs.IsQueryStop()) {
        stopped = rs;
        break;
      }
      if (!rs.ok()) return rs;
    } else {
      // Expand the nearest element: emit its index spaces, push children.
      const ElementEntry entry = element_queue.top();
      element_queue.pop();
      if (entry.bound > current_eps()) continue;
      const int l = entry.seq.length();
      int min_r = 0;
      int max_r = r;
      const double eps_now = current_eps();
      if (std::isfinite(eps_now)) {
        min_r = ComputeMinR(ctx.mbr, eps_now, r);       // Lemma 6
        max_r = ComputeMaxR(ctx.mbr.width(), ctx.mbr.height(), eps_now,
                            r);                         // Lemma 7
      }
      if ((l >= min_r && l <= max_r) || l == 0) {
        const int64_t base = xz_.ElementBaseValue(entry.seq);
        const int max_pos = (l == r || l == 0) ? 10 : 9;
        for (int pos = 1; pos <= max_pos; ++pos) {
          const int64_t value = base + pos - 1;
          if (!SortedContainsRange(*directory, value, value)) {
            continue;  // nothing stored
          }
          // Aggregate-MBR check at push keeps provably-too-far spaces
          // out of the queue entirely (kAbsent cannot happen here — the
          // tier is a superset of the directory — but keeping it would
          // be the conservative reaction anyway).
          if (fsnap != nullptr &&
              fsnap->ProbeValue(value, ctx.mbr, current_eps(),
                                /*check_rows=*/false, &filter_stats) ==
                  filter::ProbeResult::kMbrPruned) {
            continue;
          }
          const double bound = pruner.IndexSpaceLowerBound(entry.seq, pos);
          if (bound <= current_eps()) {
            space_queue.push(SpaceEntry{bound, value});
          }
        }
      }
      if (l != 0 && l < r && l < max_r) {
        for (int q = 0; q < 4; ++q) {
          const index::QuadSeq child = entry.seq.Child(q);
          if (!subtree_has_values(child)) continue;
          const double bound = pruner.ElementLowerBound(child);
          if (bound <= current_eps()) {
            element_queue.push(ElementEntry{bound, child});
          }
        }
      }
    }
  }
  pruning_ms += phase.ElapsedMillis();
  m->pruning_ms = pruning_ms;
  FoldFilterStats(filter_stats, m);

  topk.Drain(results);  // ascending (distance, id), thread-count agnostic
  m->results = results->size();
  m->total_ms = total.ElapsedMillis();
  if (!stopped.ok()) return ResolveStop(stopped, allow_partial, m);
  return Status::OK();
}

Status TrassStore::SimilarityJoin(
    double eps, Measure measure,
    std::vector<std::pair<uint64_t, uint64_t>>* pairs,
    QueryMetrics* metrics, const QueryOptions& query_options) {
  pairs->clear();
  if (options_.string_keys) {
    return Status::NotSupported("queries unsupported in string-key mode");
  }
  QueryMetrics local_metrics;
  QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = QueryMetrics();
  m->ingest_watermark = ingest_watermark();
  m->read_only_replicas = store_->ReadOnlyReplicas();
  double waited_ms = 0.0;
  AdmissionSlot slot(&admission_, &waited_ms);
  m->admission_wait_ms = waited_ms;
  if (!slot.status().ok()) return slot.status();
  QueryContext control;
  ArmControl(query_options, &control);
  Stopwatch total;

  // Stream every stored trajectory once, then probe the index with each.
  // (A production join would partition by element and join partitions;
  // probe-per-row reuses the threshold machinery and is exact.)
  // The probes bypass admission — the join already holds the slot — but
  // share this join's QueryContext, so one deadline covers the whole join.
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s = store_->Scan({kv::ScanRange{"", ""}}, nullptr, &rows, &report,
                          &control);
  FoldScanReport(report, m);
  if (s.IsQueryStop()) {
    m->total_ms = total.ElapsedMillis();
    return ResolveStop(s, query_options.allow_partial, m);
  }
  if (!s.ok()) return s;
  Status stopped;
  for (const kv::Row& row : rows) {
    if (Status stop = control.Check(); !stop.ok()) {
      stopped = stop;
      break;
    }
    StoredTrajectory t;
    s = DecodeRow(Slice(row.key), Slice(row.value), &t);
    if (!s.ok()) return s;
    std::vector<SearchResult> matches;
    QueryMetrics probe;
    s = ThresholdSearchInternal(t.points, eps, measure, &control,
                                /*allow_partial=*/false, &matches, &probe);
    m->partial = m->partial || probe.partial;
    m->skipped_regions += probe.skipped_regions;
    m->scan_retries += probe.scan_retries;
    m->retrieved += probe.retrieved;
    m->candidates += probe.candidates;
    m->refined += probe.refined;
    m->lb_rejected += probe.lb_rejected;
    m->refine_dp_runs += probe.refine_dp_runs;
    m->refine_threads = probe.refine_threads;
    m->pruning_ms += probe.pruning_ms;
    m->scan_ms += probe.scan_ms;
    m->refine_ms += probe.refine_ms;
    m->refine_decode_ms += probe.refine_decode_ms;
    m->refine_lb_ms += probe.refine_lb_ms;
    m->refine_dp_ms += probe.refine_dp_ms;
    m->filter_elements_pruned += probe.filter_elements_pruned;
    m->filter_mbr_pruned += probe.filter_mbr_pruned;
    m->fingerprint_skips += probe.fingerprint_skips;
    m->filter_memory_bytes = probe.filter_memory_bytes;  // gauge, not a sum
    m->block_cache_hits += probe.block_cache_hits;
    m->block_cache_misses += probe.block_cache_misses;
    m->block_cache_fills += probe.block_cache_fills;
    m->readahead_reads += probe.readahead_reads;
    m->readahead_bytes_read += probe.readahead_bytes_read;
    if (s.IsQueryStop()) {
      // Pairs from completed probes are exact; the stopped probe's
      // partial matches are discarded (they could miss pairs).
      stopped = s;
      break;
    }
    if (!s.ok()) return s;
    for (const SearchResult& match : matches) {
      if (match.id > t.id) {
        pairs->emplace_back(t.id, match.id);
      }
    }
  }
  std::sort(pairs->begin(), pairs->end());
  m->results = pairs->size();
  m->total_ms = total.ElapsedMillis();
  if (!stopped.ok()) {
    return ResolveStop(stopped, query_options.allow_partial, m);
  }
  return Status::OK();
}

Status TrassStore::RangeQuery(const geo::Mbr& window,
                              std::vector<uint64_t>* ids,
                              QueryMetrics* metrics,
                              const QueryOptions& query_options) {
  ids->clear();
  if (options_.string_keys) {
    return Status::NotSupported("queries unsupported in string-key mode");
  }
  QueryMetrics local_metrics;
  QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = QueryMetrics();
  m->ingest_watermark = ingest_watermark();
  m->read_only_replicas = store_->ReadOnlyReplicas();
  double waited_ms = 0.0;
  AdmissionSlot slot(&admission_, &waited_ms);
  m->admission_wait_ms = waited_ms;
  if (!slot.status().ok()) return slot.status();
  QueryContext control;
  ArmControl(query_options, &control);
  Stopwatch total;
  Stopwatch phase;

  // Candidate index spaces: every element whose enlarged element
  // intersects the window, restricted to position codes whose sub-quad
  // union still touches the window (a trajectory intersecting the window
  // has a point in one of its occupied sub-quads).
  const auto directory = value_directory();  // one snapshot per query
  // Taken after the directory so the tier is a superset of it (see
  // ThresholdSearchInternal).
  const auto fsnap = FilterSnapshotForQuery();
  std::vector<std::pair<int64_t, int64_t>> values;
  struct Walker {
    const index::XzStar* xz;
    const std::vector<int64_t>* directory;
    const geo::Mbr* window;
    const QueryContext* control;
    std::vector<std::pair<int64_t, int64_t>>* out;
    size_t tick = 0;
    bool stop = false;

    void Emit(const index::QuadSeq& seq) {
      const int64_t base = xz->ElementBaseValue(seq);
      const int max_pos =
          (seq.length() == xz->max_resolution() || seq.length() == 0) ? 10
                                                                      : 9;
      for (int pos = 1; pos <= max_pos; ++pos) {
        for (const geo::Mbr& rect :
             index::XzStar::IndexSpaceRects(seq, pos)) {
          if (rect.Intersects(*window)) {
            out->emplace_back(base + pos - 1, base + pos - 1);
            break;
          }
        }
      }
    }

    void Visit(const index::QuadSeq& seq) {
      if (stop) return;
      // Same polling cadence as the pruner's traversal.
      if (++tick % GlobalPruner::kControlCheckStride == 0 &&
          control->ShouldStop()) {
        stop = true;
        return;
      }
      if (!seq.ElementBounds().Intersects(*window)) return;
      // Skip subtrees with no stored trajectories (value directory).
      const int64_t base = xz->ElementBaseValue(seq);
      if (!SortedContainsRange(
              *directory, base,
              base + xz->NumIndexSpaces(seq.length()) - 1)) {
        return;
      }
      Emit(seq);
      if (seq.length() < xz->max_resolution()) {
        for (int q = 0; q < 4; ++q) Visit(seq.Child(q));
      }
    }
  };
  Walker walker{&xz_, directory.get(), &window, &control, &values};
  walker.Emit(index::QuadSeq());  // root overflow bucket
  for (int q = 0; q < 4; ++q) {
    walker.Visit(index::QuadSeq().Child(q));
  }
  index::MergeRanges(&values);
  auto present = IntersectWithDirectory(values, *directory);
  // Filter tier: a value whose aggregate MBR misses the window cannot
  // hold a trajectory with a point inside it — drop it before the scan.
  filter::ProbeStats filter_stats;
  if (fsnap != nullptr) {
    m->filter_memory_bytes = fsnap->memory_bytes();
    std::vector<std::pair<int64_t, int64_t>> filtered;
    Status fs = fsnap->ProbeRangesWindow(present, window, &control,
                                         &filtered, &filter_stats);
    FoldFilterStats(filter_stats, m);
    if (!fs.ok()) {
      m->total_ms = total.ElapsedMillis();
      return ResolveStop(fs, query_options.allow_partial, m);
    }
    present = std::move(filtered);
  }
  m->pruning_ms = phase.ElapsedMillis();
  m->scan_ranges = present.size();
  m->index_values = CountPresentValues(present, *directory);
  if (Status stop = control.Check(); !stop.ok()) {
    m->total_ms = total.ElapsedMillis();
    return ResolveStop(stop, query_options.allow_partial, m);
  }

  phase.Reset();
  WindowScanFilter filter(window);
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s =
      store_->Scan(ToScanRanges(present), &filter, &rows, &report, &control);
  FoldScanReport(report, m);
  m->scan_ms = phase.ElapsedMillis();
  m->retrieved = filter.scanned();
  m->candidates = rows.size();
  if (s.IsQueryStop()) {
    m->total_ms = total.ElapsedMillis();
    return ResolveStop(s, query_options.allow_partial, m);
  }
  if (!s.ok()) return s;

  Status stopped;
  for (const kv::Row& row : rows) {
    if (Status stop = control.Check(); !stop.ok()) {
      stopped = stop;
      break;
    }
    uint8_t shard;
    int64_t value;
    uint64_t tid;
    s = DecodeRowKey(Slice(row.key), &shard, &value, &tid);
    if (!s.ok()) return s;
    ids->push_back(tid);
  }
  std::sort(ids->begin(), ids->end());
  m->results = ids->size();
  m->total_ms = total.ElapsedMillis();
  if (!stopped.ok()) {
    return ResolveStop(stopped, query_options.allow_partial, m);
  }
  return Status::OK();
}

}  // namespace core
}  // namespace trass
