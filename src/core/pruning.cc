#include "core/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "index/xz2.h"  // MergeRanges

namespace trass {
namespace core {

QueryGeometry QueryGeometry::Make(const std::vector<geo::Point>& query_points,
                                double dp_tolerance) {
  QueryGeometry ctx;
  ctx.points = query_points;
  ctx.mbr = geo::Mbr::Of(query_points);
  ctx.features = DpFeatures::ComputeCapped(query_points, dp_tolerance);
  return ctx;
}

double MinDistToRegion(const geo::Mbr& query_mbr,
                       const std::vector<geo::Mbr>& region) {
  // Each MBR edge holds at least one query point; a point on edge e is at
  // least min_{p in e} d(p, region) from any trajectory inside the region,
  // so the max over edges lower-bounds the similarity distance (Lemma 9 /
  // Lemma 11).
  geo::Point c[4];
  query_mbr.Corners(c);
  double worst_edge = 0.0;
  for (int e = 0; e < 4; ++e) {
    const geo::Point& a = c[e];
    const geo::Point& b = c[(e + 1) % 4];
    double nearest = std::numeric_limits<double>::infinity();
    for (const geo::Mbr& rect : region) {
      nearest = std::min(nearest, rect.SegmentDistance(a, b));
      if (nearest == 0.0) break;
    }
    worst_edge = std::max(worst_edge, nearest);
  }
  return worst_edge;
}

double MinDistToRegion(const geo::Mbr& query_mbr, const geo::Mbr& region) {
  return geo::MinEdgeToRegionDistance(query_mbr, region);
}

double RectToPointsDistance(const geo::Mbr& rect,
                            const std::vector<geo::Point>& points) {
  double best = std::numeric_limits<double>::infinity();
  for (const geo::Point& p : points) {
    best = std::min(best, rect.Distance(p));
    if (best == 0.0) break;
  }
  return best;
}

int ComputeMaxR(double mbr_width, double mbr_height, double eps,
                int max_resolution) {
  // An enlarged element at resolution rho has side 2 * 0.5^rho. Centering
  // it inside the query MBR leaves gaps (dim - side)/2 that some query
  // point must bridge (Definition 9 / Lemma 7); they must stay <= eps.
  const double needed = std::max(mbr_width, mbr_height) - 2.0 * eps;
  if (needed <= 0.0) return max_resolution;
  // Largest rho with 0.5^rho >= needed / 2.
  const int rho = static_cast<int>(
      std::floor(std::log(needed / 2.0) / std::log(0.5)));
  return std::clamp(rho, 0, max_resolution);
}

int ComputeMinR(const geo::Mbr& query_mbr, double eps, int max_resolution) {
  return index::SequenceFor(query_mbr.Expanded(eps), max_resolution).length();
}

double GlobalPruner::ElementLowerBound(const index::QuadSeq& seq) const {
  return MinDistToRegion(query_->mbr, seq.ElementBounds());
}

double GlobalPruner::IndexSpaceLowerBound(const index::QuadSeq& seq,
                                          int pos) const {
  // Lemma 10: any trajectory with this code has a point in each sub-quad
  // of the code, so the farthest such sub-quad bounds the distance.
  const unsigned mask = index::MaskFromPositionCode(pos);
  double bound = 0.0;
  for (int quad = 0; quad < 4; ++quad) {
    if (mask & (1u << quad)) {
      bound = std::max(bound,
                       RectToPointsDistance(
                           index::XzStar::SubQuadBounds(seq, quad),
                           query_->points));
    }
  }
  // Lemma 11: the trajectory also lies entirely inside the index space.
  bound = std::max(
      bound, MinDistToRegion(query_->mbr,
                             index::XzStar::IndexSpaceRects(seq, pos)));
  return bound;
}

void GlobalPruner::EmitElement(
    const index::QuadSeq& seq, double eps,
    std::vector<std::pair<int64_t, int64_t>>* out) const {
  // Distances from each sub-quad to the query's points, computed once and
  // shared by all ten position codes (Lemma 10).
  double quad_dist[4];
  for (int quad = 0; quad < 4; ++quad) {
    quad_dist[quad] = RectToPointsDistance(
        index::XzStar::SubQuadBounds(seq, quad), query_->points);
  }
  const int64_t base = xz_->ElementBaseValue(seq);
  const int max_pos =
      (seq.length() == xz_->max_resolution() || seq.length() == 0) ? 10 : 9;
  for (int pos = 1; pos <= max_pos; ++pos) {
    const unsigned mask = index::MaskFromPositionCode(pos);
    bool pruned = false;
    for (int quad = 0; quad < 4 && !pruned; ++quad) {
      if ((mask & (1u << quad)) && quad_dist[quad] > eps) pruned = true;
    }
    if (pruned) continue;
    if (MinDistToRegion(query_->mbr,
                        index::XzStar::IndexSpaceRects(seq, pos)) > eps) {
      continue;  // Lemma 11
    }
    const int64_t value = base + pos - 1;
    out->emplace_back(value, value);
  }
}

bool SortedContainsRange(const std::vector<int64_t>& sorted, int64_t lo,
                         int64_t hi) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), lo);
  return it != sorted.end() && *it <= hi;
}

std::pair<int64_t, int64_t> GlobalPruner::SubtreeRange(
    const index::QuadSeq& seq) const {
  const int64_t base = xz_->ElementBaseValue(seq);
  const int64_t span =
      seq.length() == 0 ? 10 : xz_->NumIndexSpaces(seq.length());
  return {base, base + span - 1};
}

bool GlobalPruner::SubtreeHasData(const index::QuadSeq& seq) const {
  if (directory_ == nullptr) return true;
  const auto [lo, hi] = SubtreeRange(seq);
  return SortedContainsRange(*directory_, lo, hi);
}

void GlobalPruner::Visit(
    const index::QuadSeq& seq, double eps, int min_r, int max_r,
    const geo::Mbr& ext, size_t* budget, bool use_position_codes,
    std::vector<std::pair<int64_t, int64_t>>* out) const {
  const geo::Mbr element = seq.ElementBounds();
  // Lemma 8; child elements nest inside this element, so the whole
  // subtree is pruned with it.
  if (!element.Intersects(ext)) return;
  if (!SubtreeHasData(seq)) return;
  const int l = seq.length();
  if (*budget == 0) {
    // Out of traversal budget: cover the whole subtree conservatively.
    out->push_back(SubtreeRange(seq));
    return;
  }
  // Cooperative stop: piggyback on the visit budget so the clock is read
  // once per kControlCheckStride elements, not per element. Abandoning
  // here leaves the ranges incomplete; the caller checks the control.
  if (control_ != nullptr && (*budget % kControlCheckStride) == 0 &&
      control_->ShouldStop()) {
    *budget = 0;
    return;
  }
  --*budget;
  if (l >= min_r && l <= max_r &&
      MinDistToRegion(query_->mbr, element) <= eps) {  // Lemma 9
    if (use_position_codes) {
      EmitElement(seq, eps, out);
    } else {
      // Ablation: element-granular candidates, Lemmas 10/11 skipped.
      const int64_t base = xz_->ElementBaseValue(seq);
      const int max_pos =
          (l == xz_->max_resolution() || l == 0) ? 10 : 9;
      out->emplace_back(base, base + max_pos - 1);
    }
  }
  if (l < max_r && l < xz_->max_resolution()) {
    for (int q = 0; q < 4; ++q) {
      Visit(seq.Child(q), eps, min_r, max_r, ext, budget,
            use_position_codes, out);
    }
  }
}

std::vector<std::pair<int64_t, int64_t>> GlobalPruner::CandidateRanges(
    double eps, size_t visit_budget, bool use_position_codes) const {
  std::vector<std::pair<int64_t, int64_t>> out;
  const geo::Mbr ext = query_->mbr.Expanded(eps);
  const int min_r = ComputeMinR(query_->mbr, eps, xz_->max_resolution());
  const int max_r = ComputeMaxR(query_->mbr.width(), query_->mbr.height(),
                                eps, xz_->max_resolution());
  if (min_r == 0 && SubtreeHasData(index::QuadSeq())) {
    // The root overflow bucket is a candidate (Lemma 6 cannot exclude it).
    if (use_position_codes) {
      EmitElement(index::QuadSeq(), eps, &out);
    } else {
      const int64_t base = xz_->ElementBaseValue(index::QuadSeq());
      out.emplace_back(base, base + 9);
    }
  }
  index::QuadSeq root;
  size_t budget = visit_budget;
  for (int q = 0; q < 4; ++q) {
    Visit(root.Child(q), eps, min_r, max_r, ext, &budget,
          use_position_codes, &out);
  }
  index::MergeRanges(&out);
  return out;
}

int64_t GlobalPruner::CountValues(
    const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  int64_t count = 0;
  for (const auto& [lo, hi] : ranges) count += hi - lo + 1;
  return count;
}

}  // namespace core
}  // namespace trass
