// TrassStore: the public entry point of the library. Wires together the
// XZ* index, the row codec, global pruning, pushdown local filtering, and
// the sharded key-value store into the two similarity searches of the
// paper (threshold, Algorithm 3; best-first top-k, Algorithm 4) plus the
// spatial range query the conclusion mentions.

#ifndef TRASS_CORE_TRASS_STORE_H_
#define TRASS_CORE_TRASS_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/measure.h"
#include "core/metrics.h"
#include "core/pruning.h"
#include "core/row_codec.h"
#include "core/trajectory.h"
#include "geo/units.h"
#include "index/xzstar.h"
#include "kv/region_store.h"
#include "util/query_context.h"

namespace trass {
namespace core {

struct TrassOptions {
  /// Hash-shard count (the paper's `shards` row-key component); also the
  /// number of store regions. Paper default: 8.
  int shards = 8;

  /// XZ* maximum resolution. Paper default: 16.
  int max_resolution = 16;

  /// Douglas-Peucker tolerance for the stored features, in normalized
  /// units. The paper's 0.01 is in degrees (see geo/units.h), i.e.
  /// 0.01 * kDegree here.
  double dp_tolerance = 0.01 * geo::kDegree;

  /// Threads used for parallel region scans.
  size_t scan_threads = 4;

  /// TraSS-S mode: string-encoded row keys (Figure 13c storage
  /// comparison). Stores only; queries are unsupported in this mode.
  bool string_keys = false;

  /// Opt-in availability-over-completeness: when a store region keeps
  /// failing after retries, skip it instead of failing the query. Query
  /// results are then flagged via QueryMetrics::partial /
  /// skipped_regions. Off by default: a query either sees every region
  /// or returns the region-attributed error.
  bool degraded_scans = false;

  /// Region-scan retry tuning (see RegionStore::RegionOptions).
  int max_scan_retries = 2;
  uint64_t scan_retry_backoff_ms = 2;

  /// Replication (see RegionStore::RegionOptions): copies kept per
  /// shard. With > 1, ingest writes every copy synchronously and a scan
  /// whose preferred replica faults fails over to a healthy peer before
  /// spending the region retry budget, so queries stay complete unless
  /// *every* replica of a shard is down. 1 = no replication (seed
  /// behavior and on-disk layout).
  int replication_factor = 1;
  int replica_demote_threshold = 2;    // consecutive faults -> demoted
  uint64_t replica_probe_interval = 8;  // every Nth scan probes demoted

  /// Admission control for the four query APIs: at most
  /// `max_concurrent_queries` run at once (0 = unlimited), at most
  /// `admission_queue` more wait up to `admission_queue_timeout_ms` for
  /// a slot; everything beyond is shed with Status::Busy.
  int max_concurrent_queries = 0;
  int admission_queue = 0;
  double admission_queue_timeout_ms = 100.0;

  /// Underlying LSM engine tuning.
  kv::Options db_options;
};

/// Per-query controls threaded through every layer the query touches.
/// All fields are optional; the zero state is "run to completion".
struct QueryOptions {
  /// Wall-clock budget for the whole query in milliseconds; <= 0 leaves
  /// the query undeadlined. An expired query returns Status::TimedOut
  /// unless `allow_partial` is set.
  double deadline_ms = 0.0;

  /// Caller-owned cancellation flag, polled cooperatively (per pruning
  /// batch, per scanned-row batch, per refined candidate). Must outlive
  /// the call. A cancelled query returns Status::Cancelled unless
  /// `allow_partial` is set.
  const std::atomic<bool>* cancel = nullptr;

  /// Cap on rows local filtering may keep across all regions — the
  /// query's candidate memory bound. 0 = unlimited. Exceeding it returns
  /// Status::Busy unless `allow_partial` is set.
  uint64_t max_candidates = 0;

  /// When a deadline/cancel/budget stop fires, return OK with the
  /// results verified so far (a sound subset, never corrupt or
  /// duplicated) and record the reason in QueryMetrics (`partial` plus
  /// `deadline_expired`/`cancelled`/`budget_exhausted`) instead of
  /// returning the stop status.
  bool allow_partial = false;
};

class TrassStore {
 public:
  static Status Open(const TrassOptions& options, const std::string& path,
                     std::unique_ptr<TrassStore>* store);

  /// Indexes and stores one trajectory (id must be unique; points
  /// normalized to [0,1]^2). Precomputes the DP features (Section IV-D).
  Status Put(const Trajectory& trajectory);

  /// Forces memtables to disk.
  Status Flush();

  /// Anti-entropy pass over the replicated store: cross-checks the
  /// replicas of every shard and rebuilds corrupt or divergent ones
  /// from a healthy peer. Must not run concurrently with Put/Flush;
  /// concurrent queries are safe (they fail over past a replica while
  /// it is being rebuilt). No-op at replication_factor 1 beyond
  /// integrity verification bookkeeping.
  Status ScrubReplicas(kv::ScrubReport* report = nullptr);

  /// Threshold similarity search (Definition 3 / Algorithm 3).
  Status ThresholdSearch(const std::vector<geo::Point>& query, double eps,
                         Measure measure, std::vector<SearchResult>* results,
                         QueryMetrics* metrics = nullptr,
                         const QueryOptions& query_options = QueryOptions());

  /// Top-k similarity search (Definition 4 / Algorithm 4).
  Status TopKSearch(const std::vector<geo::Point>& query, int k,
                    Measure measure, std::vector<SearchResult>* results,
                    QueryMetrics* metrics = nullptr,
                    const QueryOptions& query_options = QueryOptions());

  /// Ids of trajectories with at least one point inside `window`.
  Status RangeQuery(const geo::Mbr& window, std::vector<uint64_t>* ids,
                    QueryMetrics* metrics = nullptr,
                    const QueryOptions& query_options = QueryOptions());

  /// Similarity self-join (the extension the paper's conclusion points
  /// to): every unordered pair {a, b} of stored trajectories with
  /// measure(a, b) <= eps. Runs one index-pruned probe per stored
  /// trajectory; pairs are reported once with first < second.
  Status SimilarityJoin(double eps, Measure measure,
                        std::vector<std::pair<uint64_t, uint64_t>>* pairs,
                        QueryMetrics* metrics = nullptr,
                        const QueryOptions& query_options = QueryOptions());

  const index::XzStar& xz_index() const { return xz_; }
  kv::RegionStore* region_store() { return store_.get(); }
  const TrassOptions& options() const { return options_; }

  /// The overload gate in front of the four query APIs. Exposed so
  /// operators can inspect counters, reconfigure limits at runtime
  /// (AdmissionController::Configure), and tests can occupy slots.
  AdmissionController* admission_controller() { return &admission_; }

  // ---- ingest statistics (Figure 12 / 13) ----

  uint64_t num_trajectories() const { return num_trajectories_; }
  /// Count of stored trajectories per quadrant-sequence resolution
  /// (index 0 = root overflow bucket .. max_resolution).
  const std::vector<uint64_t>& resolution_histogram() const {
    return resolution_histogram_;
  }
  /// Count per position code (index 1..10; index 0 unused).
  const std::vector<uint64_t>& position_code_histogram() const {
    return position_histogram_;
  }
  /// Mean row-key length in bytes (integer vs string encoding).
  double average_rowkey_bytes() const {
    return num_trajectories_ == 0
               ? 0.0
               : static_cast<double>(total_key_bytes_) /
                     static_cast<double>(num_trajectories_);
  }
  /// Distinct index values seen during ingest (selectivity numerator for
  /// Figures 14/15).
  uint64_t distinct_index_values() const;

  /// Sorted distinct index values — the *value directory*. This is the
  /// in-process analog of the region/SST metadata a key-value cluster
  /// uses to skip empty key ranges for free: query processing consults it
  /// so that neither the threshold scan nor the best-first top-k pays a
  /// store round-trip for an index space that holds no trajectories.
  const std::vector<int64_t>& value_directory() const;

 private:
  /// Internal query bodies: no admission (SimilarityJoin re-enters
  /// ThresholdSearch and must not deadlock on its own slot), shared
  /// QueryContext threaded through every phase.
  Status ThresholdSearchInternal(const std::vector<geo::Point>& query,
                                 double eps, Measure measure,
                                 const QueryContext* control,
                                 bool allow_partial,
                                 std::vector<SearchResult>* results,
                                 QueryMetrics* m);
  Status TopKSearchInternal(const std::vector<geo::Point>& query, int k,
                            Measure measure, const QueryContext* control,
                            bool allow_partial,
                            std::vector<SearchResult>* results,
                            QueryMetrics* m);

  /// Resolves a cooperative stop: with allow_partial, flags the metrics
  /// with the reason and reports OK (partial results stand); without,
  /// returns the stop status.
  static Status ResolveStop(const Status& stop, bool allow_partial,
                            QueryMetrics* m);

  /// Narrows candidate [lo, hi] value ranges to the values actually
  /// present, re-merged into contiguous runs.
  std::vector<std::pair<int64_t, int64_t>> IntersectWithDirectory(
      const std::vector<std::pair<int64_t, int64_t>>& ranges) const;

  /// True when any stored index value lies in [lo, hi].
  bool RangeHasValues(int64_t lo, int64_t hi) const;

  TrassStore(const TrassOptions& options);

  /// Reconstructs the value directory and ingest statistics from stored
  /// row keys when opening an existing store.
  Status RebuildIngestState();

  uint8_t ShardOf(uint64_t tid) const;

  TrassOptions options_;
  index::XzStar xz_;
  std::unique_ptr<kv::RegionStore> store_;
  AdmissionController admission_{AdmissionController::Options{}};

  uint64_t num_trajectories_ = 0;
  uint64_t total_key_bytes_ = 0;
  std::vector<uint64_t> resolution_histogram_;
  std::vector<uint64_t> position_histogram_;
  // Guards the lazily sorted value directory: admission control lets
  // queries run concurrently, and each may trigger the sort. Ingest
  // (Put) remains single-writer and must not run concurrently with
  // queries that hold a directory reference.
  mutable std::mutex values_mu_;
  mutable std::vector<int64_t> seen_values_;  // sorted-unique lazily
  mutable bool values_dirty_ = false;
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_TRASS_STORE_H_
