// TrassStore: the public entry point of the library. Wires together the
// XZ* index, the row codec, global pruning, pushdown local filtering, and
// the sharded key-value store into the two similarity searches of the
// paper (threshold, Algorithm 3; best-first top-k, Algorithm 4) plus the
// spatial range query the conclusion mentions.

#ifndef TRASS_CORE_TRASS_STORE_H_
#define TRASS_CORE_TRASS_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/measure.h"
#include "core/metrics.h"
#include "core/pruning.h"
#include "core/row_codec.h"
#include "core/trajectory.h"
#include "geo/units.h"
#include "index/xzstar.h"
#include "kv/region_store.h"

namespace trass {
namespace core {

struct TrassOptions {
  /// Hash-shard count (the paper's `shards` row-key component); also the
  /// number of store regions. Paper default: 8.
  int shards = 8;

  /// XZ* maximum resolution. Paper default: 16.
  int max_resolution = 16;

  /// Douglas-Peucker tolerance for the stored features, in normalized
  /// units. The paper's 0.01 is in degrees (see geo/units.h), i.e.
  /// 0.01 * kDegree here.
  double dp_tolerance = 0.01 * geo::kDegree;

  /// Threads used for parallel region scans.
  size_t scan_threads = 4;

  /// TraSS-S mode: string-encoded row keys (Figure 13c storage
  /// comparison). Stores only; queries are unsupported in this mode.
  bool string_keys = false;

  /// Opt-in availability-over-completeness: when a store region keeps
  /// failing after retries, skip it instead of failing the query. Query
  /// results are then flagged via QueryMetrics::partial /
  /// skipped_regions. Off by default: a query either sees every region
  /// or returns the region-attributed error.
  bool degraded_scans = false;

  /// Underlying LSM engine tuning.
  kv::Options db_options;
};

class TrassStore {
 public:
  static Status Open(const TrassOptions& options, const std::string& path,
                     std::unique_ptr<TrassStore>* store);

  /// Indexes and stores one trajectory (id must be unique; points
  /// normalized to [0,1]^2). Precomputes the DP features (Section IV-D).
  Status Put(const Trajectory& trajectory);

  /// Forces memtables to disk.
  Status Flush();

  /// Threshold similarity search (Definition 3 / Algorithm 3).
  Status ThresholdSearch(const std::vector<geo::Point>& query, double eps,
                         Measure measure, std::vector<SearchResult>* results,
                         QueryMetrics* metrics = nullptr);

  /// Top-k similarity search (Definition 4 / Algorithm 4).
  Status TopKSearch(const std::vector<geo::Point>& query, int k,
                    Measure measure, std::vector<SearchResult>* results,
                    QueryMetrics* metrics = nullptr);

  /// Ids of trajectories with at least one point inside `window`.
  Status RangeQuery(const geo::Mbr& window, std::vector<uint64_t>* ids,
                    QueryMetrics* metrics = nullptr);

  /// Similarity self-join (the extension the paper's conclusion points
  /// to): every unordered pair {a, b} of stored trajectories with
  /// measure(a, b) <= eps. Runs one index-pruned probe per stored
  /// trajectory; pairs are reported once with first < second.
  Status SimilarityJoin(double eps, Measure measure,
                        std::vector<std::pair<uint64_t, uint64_t>>* pairs,
                        QueryMetrics* metrics = nullptr);

  const index::XzStar& xz_index() const { return xz_; }
  kv::RegionStore* region_store() { return store_.get(); }
  const TrassOptions& options() const { return options_; }

  // ---- ingest statistics (Figure 12 / 13) ----

  uint64_t num_trajectories() const { return num_trajectories_; }
  /// Count of stored trajectories per quadrant-sequence resolution
  /// (index 0 = root overflow bucket .. max_resolution).
  const std::vector<uint64_t>& resolution_histogram() const {
    return resolution_histogram_;
  }
  /// Count per position code (index 1..10; index 0 unused).
  const std::vector<uint64_t>& position_code_histogram() const {
    return position_histogram_;
  }
  /// Mean row-key length in bytes (integer vs string encoding).
  double average_rowkey_bytes() const {
    return num_trajectories_ == 0
               ? 0.0
               : static_cast<double>(total_key_bytes_) /
                     static_cast<double>(num_trajectories_);
  }
  /// Distinct index values seen during ingest (selectivity numerator for
  /// Figures 14/15).
  uint64_t distinct_index_values() const;

  /// Sorted distinct index values — the *value directory*. This is the
  /// in-process analog of the region/SST metadata a key-value cluster
  /// uses to skip empty key ranges for free: query processing consults it
  /// so that neither the threshold scan nor the best-first top-k pays a
  /// store round-trip for an index space that holds no trajectories.
  const std::vector<int64_t>& value_directory() const;

 private:
  /// Narrows candidate [lo, hi] value ranges to the values actually
  /// present, re-merged into contiguous runs.
  std::vector<std::pair<int64_t, int64_t>> IntersectWithDirectory(
      const std::vector<std::pair<int64_t, int64_t>>& ranges) const;

  /// True when any stored index value lies in [lo, hi].
  bool RangeHasValues(int64_t lo, int64_t hi) const;

  TrassStore(const TrassOptions& options);

  /// Reconstructs the value directory and ingest statistics from stored
  /// row keys when opening an existing store.
  Status RebuildIngestState();

  uint8_t ShardOf(uint64_t tid) const;

  TrassOptions options_;
  index::XzStar xz_;
  std::unique_ptr<kv::RegionStore> store_;

  uint64_t num_trajectories_ = 0;
  uint64_t total_key_bytes_ = 0;
  std::vector<uint64_t> resolution_histogram_;
  std::vector<uint64_t> position_histogram_;
  mutable std::vector<int64_t> seen_values_;  // sorted-unique lazily
  mutable bool values_dirty_ = false;
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_TRASS_STORE_H_
