// TrassStore: the public entry point of the library. Wires together the
// XZ* index, the row codec, global pruning, pushdown local filtering, and
// the sharded key-value store into the two similarity searches of the
// paper (threshold, Algorithm 3; best-first top-k, Algorithm 4) plus the
// spatial range query the conclusion mentions.

#ifndef TRASS_CORE_TRASS_STORE_H_
#define TRASS_CORE_TRASS_STORE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/admission.h"
#include "core/measure.h"
#include "core/metrics.h"
#include "core/pruning.h"
#include "core/refiner.h"
#include "core/row_codec.h"
#include "core/trajectory.h"
#include "filter/filter_tier.h"
#include "geo/units.h"
#include "index/xzstar.h"
#include "ingest/ingest_pipeline.h"
#include "kv/region_store.h"
#include "util/query_context.h"

namespace trass {
namespace core {

struct TrassOptions {
  /// Hash-shard count (the paper's `shards` row-key component); also the
  /// number of store regions. Paper default: 8.
  int shards = 8;

  /// XZ* maximum resolution. Paper default: 16.
  int max_resolution = 16;

  /// Douglas-Peucker tolerance for the stored features, in normalized
  /// units. The paper's 0.01 is in degrees (see geo/units.h), i.e.
  /// 0.01 * kDegree here.
  double dp_tolerance = 0.01 * geo::kDegree;

  /// Threads used for parallel region scans.
  size_t scan_threads = 4;

  /// Threads used by the refinement engine (core/refiner.h) to fan exact
  /// similarity computations out across candidates. 1 (or 0) refines
  /// serially on the query thread; results are identical either way (the
  /// engine's determinism contract). The pool is shared by all
  /// concurrently admitted queries.
  size_t refine_threads = 4;

  /// TraSS-S mode: string-encoded row keys (Figure 13c storage
  /// comparison). Stores only; queries are unsupported in this mode.
  bool string_keys = false;

  /// Opt-in availability-over-completeness: when a store region keeps
  /// failing after retries, skip it instead of failing the query. Query
  /// results are then flagged via QueryMetrics::partial /
  /// skipped_regions. Off by default: a query either sees every region
  /// or returns the region-attributed error.
  bool degraded_scans = false;

  /// Region-scan retry tuning (see RegionStore::RegionOptions).
  int max_scan_retries = 2;
  uint64_t scan_retry_backoff_ms = 2;

  /// Replication (see RegionStore::RegionOptions): copies kept per
  /// shard. With > 1, ingest writes every copy synchronously and a scan
  /// whose preferred replica faults fails over to a healthy peer before
  /// spending the region retry budget, so queries stay complete unless
  /// *every* replica of a shard is down. 1 = no replication (seed
  /// behavior and on-disk layout).
  int replication_factor = 1;
  int replica_demote_threshold = 2;    // consecutive faults -> demoted
  uint64_t replica_probe_interval = 8;  // every Nth scan probes demoted

  /// Admission control for the four query APIs: at most
  /// `max_concurrent_queries` run at once (0 = unlimited), at most
  /// `admission_queue` more wait up to `admission_queue_timeout_ms` for
  /// a slot; everything beyond is shed with Status::Busy.
  int max_concurrent_queries = 0;
  int admission_queue = 0;
  double admission_queue_timeout_ms = 100.0;

  /// Online ingest pipeline (SubmitAsync): bounded queue slots before
  /// Submit sheds with Busy, group-commit batch bound and linger, and
  /// the encoding worker count (0 = encode on the commit thread).
  size_t ingest_queue_capacity = 1024;
  size_t ingest_batch_max_rows = 256;
  double ingest_batch_linger_ms = 2.0;
  size_t ingest_encode_threads = 2;

  /// Replicas that must accept a group commit for it to succeed. 0 (the
  /// default) means all of them — strict, matching Put. With 1 <= n <
  /// replication_factor, ingest keeps flowing through a single-replica
  /// fault: the failed replica is demoted and healed by the next
  /// ScrubReplicas. Caveat: until that scrub, a read served by a replica
  /// that missed a write can be stale-by-omission; keep the default when
  /// read-your-writes matters more than ingest availability.
  int ingest_min_ack_replicas = 0;

  /// Disk-space watermarks, copied into every replica database (see
  /// kv::Options). Below `soft` free bytes, writes are throttled and
  /// compactions deferred; below `hard`, writes are shed with
  /// Status::NoSpace before touching the WAL, so the store degrades
  /// cleanly instead of hitting a raw ENOSPC mid-record. 0 disables.
  uint64_t soft_space_watermark_bytes = 0;
  uint64_t hard_space_watermark_bytes = 0;

  /// When > 0, a background prober wakes at this cadence and, if any
  /// replica is wedged read-only by a background error (disk full, write
  /// fault), attempts Resume() — so write availability returns on its
  /// own once the operator frees space. 0 (default) leaves resumption
  /// manual via TrassStore::Resume().
  uint64_t auto_resume_interval_ms = 0;

  /// Memory-resident filter tier (src/filter/): succinct per-element
  /// summaries (Elias-Fano value universe + count + aggregate MBR) and
  /// optional per-row fingerprints, consulted between global pruning and
  /// the store scans so empty or provably-too-far index values never
  /// cost a KV read. Never changes query results (equivalence-tested);
  /// costs RAM (QueryMetrics::filter_memory_bytes) and a small publish
  /// step per ingest commit. Off by default (seed behavior).
  struct FilterTierKnobs {
    bool enable = false;
    /// Keep per-row records (quantized MBR + minhash signature): row-
    /// level miss proofs on the threshold path, candidate ordering for
    /// top-k. Summaries-only when false (smaller RAM).
    bool fingerprints = true;
    int fingerprint_hashes = 16;  // minhash slots per row
    int fingerprint_bits = 32;    // bits kept per slot, in [4, 32]
    int fingerprint_grid = 1024;  // shingle discretization per axis
    /// Rebuild the tier from a fresh store scan during ScrubReplicas and
    /// count disagreements (filter_scrub_mismatches()); when false the
    /// tier is left as-is across scrubs.
    bool rebuild_on_scrub = true;
  } filter_tier;

  /// Underlying LSM engine tuning.
  kv::Options db_options;
};

/// Per-query controls threaded through every layer the query touches.
/// All fields are optional; the zero state is "run to completion".
struct QueryOptions {
  /// Wall-clock budget for the whole query in milliseconds; <= 0 leaves
  /// the query undeadlined. An expired query returns Status::TimedOut
  /// unless `allow_partial` is set.
  double deadline_ms = 0.0;

  /// Caller-owned cancellation flag, polled cooperatively (per pruning
  /// batch, per scanned-row batch, per refined candidate). Must outlive
  /// the call. A cancelled query returns Status::Cancelled unless
  /// `allow_partial` is set.
  const std::atomic<bool>* cancel = nullptr;

  /// Cap on rows local filtering may keep across all regions — the
  /// query's candidate memory bound. 0 = unlimited. Exceeding it returns
  /// Status::Busy unless `allow_partial` is set.
  uint64_t max_candidates = 0;

  /// When a deadline/cancel/budget stop fires, return OK with the
  /// results verified so far (a sound subset, never corrupt or
  /// duplicated) and record the reason in QueryMetrics (`partial` plus
  /// `deadline_expired`/`cancelled`/`budget_exhausted`) instead of
  /// returning the stop status.
  bool allow_partial = false;
};

/// Store-wide availability snapshot (see TrassStore::Health): the
/// per-region/per-replica counters plus the degraded-write rollup.
struct HealthReport {
  /// Per-region availability, including each replica's live
  /// read_only/background_error state (kv::ReplicaHealth).
  std::vector<kv::RegionHealth> regions;
  /// Replicas currently wedged read-only by a background error.
  uint64_t read_only_replicas = 0;
  /// True when some region has fewer writable replicas than
  /// ingest_min_ack_replicas requires — SubmitAsync is shedding and
  /// synchronous writes will fail until Resume() succeeds.
  bool writes_degraded = false;
  /// First replica's sticky background error ("" when none).
  std::string first_background_error;
  uint64_t ingest_watermark = 0;
};

class TrassStore {
 public:
  static Status Open(const TrassOptions& options, const std::string& path,
                     std::unique_ptr<TrassStore>* store);

  /// Stops the auto-resume prober and, when the store below is wedged
  /// read-only, arms the ingest pipeline's fail-fast drain so teardown
  /// resolves the queued backlog immediately (tickets fail with the
  /// sticky error; the watermark still advances) instead of hanging on
  /// doomed writes.
  ~TrassStore();

  /// Indexes and stores one trajectory (id must be unique; points
  /// normalized to [0,1]^2). Precomputes the DP features (Section IV-D).
  /// Thread-safe: writes are serialized internally and may run
  /// concurrently with queries — a query started before the Put returns
  /// sees either none of the trajectory or all of it (row, features,
  /// value-directory entry), never a torn state.
  ///
  /// Idempotent on re-delivery: re-putting an id already stored (same
  /// points) overwrites the identical row and leaves statistics, the
  /// value directory, and query results unchanged — the property the
  /// serving tier's hint replay and duplicate-delivery tolerance rely
  /// on. (Re-putting an id with *different* points is a contract
  /// violation, as ever.)
  Status Put(const Trajectory& trajectory);

  /// Group commit: indexes and stores a batch of trajectories in one
  /// commit per touched region (one WAL record per region instead of one
  /// per trajectory), which is where batched ingest beats repeated Put.
  /// All-or-nothing per region; thread-safe like Put. The batch becomes
  /// visible to queries atomically (directory + statistics publish after
  /// every region applied).
  Status PutBatch(const std::vector<Trajectory>& trajectories);

  /// Asynchronous ingest: queues `trajectory` into the ingest pipeline
  /// and returns immediately. On acceptance *ticket (if non-null)
  /// receives a sequence number for WaitForWatermark. Backpressure is
  /// explicit: a full queue makes the call wait up to `max_wait_ms` and
  /// then shed with Status::Busy (the admission-control convention).
  /// Also sheds with Busy — without queueing — while writes are
  /// degraded (a region below its required acks is wedged read-only):
  /// accepting a ticket whose commit is known-doomed would only turn
  /// into a recorded failure, so the shed happens up front where the
  /// caller can retry after Resume(). Callable from any thread,
  /// concurrently with everything else.
  Status SubmitAsync(Trajectory trajectory, uint64_t max_wait_ms = 0,
                     uint64_t* ticket = nullptr);

  /// Blocks until every trajectory with ticket <= `ticket` has resolved
  /// (visible to queries, or recorded as an ingest failure — see
  /// ingest_stats()/ingest_last_error()). TimedOut after `timeout_ms`.
  Status WaitForWatermark(uint64_t ticket, uint64_t timeout_ms) const;

  /// Waits until everything accepted by SubmitAsync so far has resolved.
  Status DrainIngest(uint64_t timeout_ms) const;

  /// Last resolved ingest ticket; queries record the watermark they ran
  /// at in QueryMetrics::ingest_watermark.
  uint64_t ingest_watermark() const;

  /// Ingest pipeline counters (queue depth/high-water, sheds, batches,
  /// watermark lag).
  ingest::IngestStatsSnapshot ingest_stats() const;

  /// Most recent asynchronous ingest failure (OK when none).
  Status ingest_last_error() const;

  /// Forces memtables to disk.
  Status Flush();

  /// Anti-entropy pass over the replicated store: cross-checks the
  /// replicas of every shard and rebuilds corrupt or divergent ones
  /// from a healthy peer. Safe to call concurrently with both queries
  /// (they fail over past a replica while it is being rebuilt) and
  /// ingest: the scrub and the ingest commit path are serialized on an
  /// internal mutex, so group commits queue up behind a running scrub
  /// (backpressure may shed SubmitAsync calls while it runs). No-op at
  /// replication_factor 1 beyond integrity verification bookkeeping.
  Status ScrubReplicas(kv::ScrubReport* report = nullptr);

  /// Attempts to restore write availability after a resource-exhaustion
  /// failure: calls DB::Resume on every replica wedged read-only (fresh
  /// WAL, memtable flushed, manifest re-verified). Serialized against
  /// the write paths like ScrubReplicas. Returns the first replica that
  /// stayed wedged; OK when the store is fully writable again. Rows a
  /// replica missed while read-only are healed by ScrubReplicas, not
  /// here. Also runs automatically when auto_resume_interval_ms > 0.
  Status Resume();

  /// Availability snapshot: per-region/per-replica health (including
  /// live read-only state), the wedged-replica count, and whether
  /// ingest-facing writes are degraded. Safe to call concurrently with
  /// everything.
  HealthReport Health() const;

  /// Threshold similarity search (Definition 3 / Algorithm 3).
  Status ThresholdSearch(const std::vector<geo::Point>& query, double eps,
                         Measure measure, std::vector<SearchResult>* results,
                         QueryMetrics* metrics = nullptr,
                         const QueryOptions& query_options = QueryOptions());

  /// Top-k similarity search (Definition 4 / Algorithm 4).
  Status TopKSearch(const std::vector<geo::Point>& query, int k,
                    Measure measure, std::vector<SearchResult>* results,
                    QueryMetrics* metrics = nullptr,
                    const QueryOptions& query_options = QueryOptions());

  /// Ids of trajectories with at least one point inside `window`.
  Status RangeQuery(const geo::Mbr& window, std::vector<uint64_t>* ids,
                    QueryMetrics* metrics = nullptr,
                    const QueryOptions& query_options = QueryOptions());

  /// Similarity self-join (the extension the paper's conclusion points
  /// to): every unordered pair {a, b} of stored trajectories with
  /// measure(a, b) <= eps. Runs one index-pruned probe per stored
  /// trajectory; pairs are reported once with first < second.
  Status SimilarityJoin(double eps, Measure measure,
                        std::vector<std::pair<uint64_t, uint64_t>>* pairs,
                        QueryMetrics* metrics = nullptr,
                        const QueryOptions& query_options = QueryOptions());

  const index::XzStar& xz_index() const { return xz_; }
  kv::RegionStore* region_store() { return store_.get(); }
  /// The asynchronous ingest pipeline behind SubmitAsync (test hooks,
  /// detailed stats). Never null after a successful Open.
  ingest::IngestPipeline* ingest_pipeline() { return pipeline_.get(); }
  const TrassOptions& options() const { return options_; }

  /// The overload gate in front of the four query APIs. Exposed so
  /// operators can inspect counters, reconfigure limits at runtime
  /// (AdmissionController::Configure), and tests can occupy slots.
  AdmissionController* admission_controller() { return &admission_; }

  // ---- ingest statistics (Figure 12 / 13) ----
  // All accessors are safe to call concurrently with ingest; histogram
  // accessors return copies taken under the ingest-state lock.

  uint64_t num_trajectories() const {
    return num_trajectories_.load(std::memory_order_relaxed);
  }
  /// Count of stored trajectories per quadrant-sequence resolution
  /// (index 0 = root overflow bucket .. max_resolution).
  std::vector<uint64_t> resolution_histogram() const;
  /// Count per position code (index 1..10; index 0 unused).
  std::vector<uint64_t> position_code_histogram() const;
  /// Mean row-key length in bytes (integer vs string encoding).
  double average_rowkey_bytes() const {
    const uint64_t n = num_trajectories_.load(std::memory_order_relaxed);
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_key_bytes_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }
  /// Distinct index values seen during ingest (selectivity numerator for
  /// Figures 14/15).
  uint64_t distinct_index_values() const;

  /// Sorted distinct index values — the *value directory*. This is the
  /// in-process analog of the region/SST metadata a key-value cluster
  /// uses to skip empty key ranges for free: query processing consults it
  /// so that neither the threshold scan nor the best-first top-k pays a
  /// store round-trip for an index space that holds no trajectories.
  /// Returns an immutable snapshot: each query takes one at its start and
  /// consults only it, so a concurrent group commit (which publishes a
  /// fresh snapshot) can never mutate a directory mid-query.
  std::shared_ptr<const std::vector<int64_t>> value_directory() const;

  /// The memory-resident filter tier, or null when
  /// TrassOptions::filter_tier.enable is false (or in string-key mode).
  /// Queries consult immutable snapshots of it; see filter/filter_tier.h
  /// for the consistency contract.
  filter::FilterTier* filter_tier() { return filter_tier_.get(); }

  /// Elements the last scrub-time filter validation found disagreeing
  /// with the store (0 when never scrubbed, the tier is disabled, or
  /// rebuild_on_scrub is off). A non-zero value means the rebuilt tier
  /// replaced a stale/corrupt one — the scrub healed it.
  uint64_t filter_scrub_mismatches() const {
    return filter_scrub_mismatches_.load(std::memory_order_relaxed);
  }

 private:
  /// Internal query bodies: no admission (SimilarityJoin re-enters
  /// ThresholdSearch and must not deadlock on its own slot), shared
  /// QueryContext threaded through every phase.
  Status ThresholdSearchInternal(const std::vector<geo::Point>& query,
                                 double eps, Measure measure,
                                 const QueryContext* control,
                                 bool allow_partial,
                                 std::vector<SearchResult>* results,
                                 QueryMetrics* m);
  Status TopKSearchInternal(const std::vector<geo::Point>& query, int k,
                            Measure measure, const QueryContext* control,
                            bool allow_partial,
                            std::vector<SearchResult>* results,
                            QueryMetrics* m);

  /// Resolves a cooperative stop: with allow_partial, flags the metrics
  /// with the reason and reports OK (partial results stand); without,
  /// returns the stop status.
  static Status ResolveStop(const Status& stop, bool allow_partial,
                            QueryMetrics* m);

  /// Narrows candidate [lo, hi] value ranges to the values actually
  /// present in `directory`, re-merged into contiguous runs.
  static std::vector<std::pair<int64_t, int64_t>> IntersectWithDirectory(
      const std::vector<std::pair<int64_t, int64_t>>& ranges,
      const std::vector<int64_t>& directory);

  /// Present (directory-held) index values inside `ranges` — the
  /// QueryMetrics::index_values definition for the scan-based paths.
  static uint64_t CountPresentValues(
      const std::vector<std::pair<int64_t, int64_t>>& ranges,
      const std::vector<int64_t>& directory);

  /// Filter-tier snapshot for a query, or null when the tier is off.
  /// Must be taken *after* the query's directory snapshot: the tier only
  /// grows under ingest, so a later tier snapshot is a superset of any
  /// earlier directory — absent-in-tier then soundly implies empty.
  std::shared_ptr<const filter::FilterSnapshot> FilterSnapshotForQuery()
      const {
    return filter_tier_ != nullptr ? filter_tier_->snapshot() : nullptr;
  }

  /// Converts applied encoded rows into filter-tier row records and
  /// publishes them (step 3 of rows -> stats -> filter -> watermark).
  void PublishFilterRows(const std::vector<ingest::EncodedRow>& rows,
                         const std::vector<char>& applied);

  /// Full store scan -> filter-tier row records (open/recovery/scrub
  /// rebuild). Caller must hold ingest_mu_ or be inside Open.
  Status CollectFilterRows(std::vector<filter::FilterRowData>* rows) const;

  TrassStore(const TrassOptions& options);

  /// Body of the auto-resume prober thread (auto_resume_interval_ms).
  void AutoResumeLoop();

  /// Reconstructs the value directory and ingest statistics from stored
  /// row keys when opening an existing store. Also the crash-recovery
  /// path: after a crash mid-batch, whatever rows the WAL replay kept
  /// are re-derived into a consistent directory + statistics view.
  Status RebuildIngestState();

  uint8_t ShardOf(uint64_t tid) const;

  /// Encodes one trajectory into its ready-to-write row (XZ* index, DP
  /// features, row codec). Thread-safe; called from the encode pool.
  Status EncodeTrajectory(const Trajectory& trajectory,
                          ingest::EncodedRow* row) const;

  /// The single commit path every write funnels through (Put, PutBatch,
  /// and the pipeline's group commits): groups rows by region, applies
  /// one WriteBatch per region via RegionStore::ApplyBatch, then
  /// publishes statistics and a fresh value-directory snapshot for the
  /// applied rows. Serialized on ingest_mu_ (also against
  /// ScrubReplicas). Rows from regions whose apply failed are neither
  /// stored nor published; the first failure is returned.
  Status CommitEncoded(std::vector<ingest::EncodedRow>* rows);

  TrassOptions options_;
  index::XzStar xz_;
  std::unique_ptr<kv::RegionStore> store_;
  AdmissionController admission_{AdmissionController::Options{}};

  // Refinement engine (declared pool-first: the refiner holds a raw pool
  // pointer and is destroyed before it). The pool is null — and the
  // engine serial — when refine_threads <= 1.
  std::unique_ptr<ThreadPool> refine_pool_;
  std::unique_ptr<Refiner> refiner_;

  // Serializes writers: Put/PutBatch callers, the pipeline's commit
  // thread, and ScrubReplicas (a rebuild would miss concurrent writes).
  // Ordered before values_mu_ (CommitEncoded takes both, in that order).
  mutable std::mutex ingest_mu_;

  std::atomic<uint64_t> num_trajectories_{0};
  std::atomic<uint64_t> total_key_bytes_{0};
  // Guards the histograms, the raw seen-values pool, and the published
  // directory snapshot. Queries take the snapshot (a shared_ptr to an
  // immutable vector) once and never touch the guarded state again, so
  // ingest publishing a new snapshot never races a running query.
  mutable std::mutex values_mu_;
  std::vector<uint64_t> resolution_histogram_;
  std::vector<uint64_t> position_histogram_;
  // Ids already counted into the statistics above. Re-applied rows
  // (hint replay, duplicated delivery) overwrite their identical LSM
  // row but must not double-count num_trajectories_/histograms — this
  // is what makes Put idempotent end to end.
  std::unordered_set<uint64_t> seen_ids_;
  mutable std::vector<int64_t> seen_values_;  // sorted-unique lazily
  mutable bool values_dirty_ = false;
  mutable std::shared_ptr<const std::vector<int64_t>> directory_;

  // Memory-resident filter tier (null when disabled). Mutated on the
  // commit path after the directory publish and before the watermark
  // advance; queries share immutable snapshots.
  std::unique_ptr<filter::FilterTier> filter_tier_;
  std::atomic<uint64_t> filter_scrub_mismatches_{0};

  // Auto-resume prober (joined by the destructor before any member
  // dies, so declaration order does not matter for it).
  mutable std::mutex resume_mu_;
  std::condition_variable resume_cv_;
  bool stop_resumer_ = false;  // guarded by resume_mu_
  std::thread resumer_;

  // Declared after store_: destroyed first, so the pipeline drains its
  // queue through CommitEncoded while the region store is still alive.
  std::unique_ptr<ingest::IngestPipeline> pipeline_;
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_TRASS_STORE_H_
