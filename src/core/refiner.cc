#include "core/refiner.h"

#include <algorithm>
#include <cmath>

#include "util/slice.h"
#include "util/stopwatch.h"

namespace trass {
namespace core {

namespace {

// Chunks handed to the pool per worker thread: enough slack that one
// chunk of expensive candidates does not serialize the tail.
constexpr size_t kChunksPerThread = 4;

inline double DistanceSq(double ax, double ay, double bx, double by) {
  const double dx = ax - bx;
  const double dy = ay - by;
  return dx * dx + dy * dy;
}

// max over the flat points of the squared distance to `box` (0 for points
// inside). SoA layout keeps this a branch-light vectorizable scan.
double MaxPointToBoxDistanceSq(const FlatView& pts, const geo::Mbr& box) {
  const double min_x = box.min_x(), max_x = box.max_x();
  const double min_y = box.min_y(), max_y = box.max_y();
  double worst = 0.0;
  for (size_t i = 0; i < pts.n; ++i) {
    const double x = pts.x[i];
    const double y = pts.y[i];
    const double dx = std::max(std::max(min_x - x, x - max_x), 0.0);
    const double dy = std::max(std::max(min_y - y, y - max_y), 0.0);
    const double d = dx * dx + dy * dy;
    worst = d > worst ? d : worst;
  }
  return worst;
}

inline double EndpointBoundSq(const RefineQuery& q, const FlatView& t) {
  const size_t n = q.x.size();
  const double start = DistanceSq(q.x[0], q.y[0], t.x[0], t.y[0]);
  const double end =
      DistanceSq(q.x[n - 1], q.y[n - 1], t.x[t.n - 1], t.y[t.n - 1]);
  return start > end ? start : end;
}

}  // namespace

RefineQuery RefineQuery::Make(const std::vector<geo::Point>& points) {
  RefineQuery q;
  q.x.reserve(points.size());
  q.y.reserve(points.size());
  for (const geo::Point& p : points) {
    q.x.push_back(p.x);
    q.y.push_back(p.y);
    q.mbr.Extend(p);
  }
  return q;
}

double RefineLowerBound(Measure measure, const RefineQuery& query,
                        const FlatView& t, const geo::Mbr& t_mbr) {
  double lb = query.mbr.Distance(t_mbr);
  if (measure != Measure::kHausdorff) {
    lb = std::max(lb, std::sqrt(EndpointBoundSq(query, t)));
  }
  lb = std::max(lb, std::sqrt(MaxPointToBoxDistanceSq(query.view(), t_mbr)));
  lb = std::max(lb, std::sqrt(MaxPointToBoxDistanceSq(t, query.mbr)));
  return lb;
}

bool LowerBoundExceeds(Measure measure, const RefineQuery& query,
                       const FlatView& t, const geo::Mbr& t_mbr,
                       double bound) {
  if (!std::isfinite(bound)) return false;  // nothing can exceed +inf
  if (query.mbr.Distance(t_mbr) > bound) return true;
  const double bound_sq = bound * bound;
  if (measure != Measure::kHausdorff &&
      EndpointBoundSq(query, t) > bound_sq) {
    return true;
  }
  if (MaxPointToBoxDistanceSq(query.view(), t_mbr) > bound_sq) return true;
  return MaxPointToBoxDistanceSq(t, query.mbr) > bound_sq;
}

Status Refiner::ProcessRows(const std::vector<kv::Row>& rows,
                            const QueryContext* control,
                            const CandidateFn& fn,
                            RefineStats* stats) const {
  const size_t n = rows.size();
  if (n == 0) return control->Check();
  const size_t workers = std::min(threads_, n);
  const size_t chunks =
      workers <= 1 ? 1 : std::min(n, workers * kChunksPerThread);
  std::vector<Scratch> scratch(chunks);

  auto run_chunk = [&](size_t c) {
    Scratch* s = &scratch[c];
    const size_t lo = c * n / chunks;
    const size_t hi = (c + 1) * n / chunks;
    Stopwatch watch;
    for (size_t i = lo; i < hi; ++i) {
      if (control->ShouldStop()) return;  // poll every candidate
      watch.Reset();
      Status st =
          DecodeRow(Slice(rows[i].key), Slice(rows[i].value), &s->decoded);
      if (!st.ok()) {
        if (s->error.ok()) s->error = st;
        return;
      }
      const size_t m = s->decoded.points.size();
      if (s->tx.size() < m) {
        s->tx.resize(m);
        s->ty.resize(m);
      }
      geo::Mbr mbr;
      for (size_t j = 0; j < m; ++j) {
        const geo::Point& p = s->decoded.points[j];
        s->tx[j] = p.x;
        s->ty[j] = p.y;
        mbr.Extend(p);
      }
      s->stats.decode_ms += watch.ElapsedMillis();
      ++s->stats.refined;
      fn(i, s->decoded, FlatView{s->tx.data(), s->ty.data(), m}, mbr, s);
    }
  };

  if (chunks == 1) {
    run_chunk(0);
  } else {
    pool_->ParallelFor(chunks, run_chunk,
                       [control] { return control->ShouldStop(); });
  }

  Status first_error;
  for (const Scratch& s : scratch) {
    stats->Fold(s.stats);
    if (first_error.ok() && !s.error.ok()) first_error = s.error;
  }
  if (!first_error.ok()) return first_error;
  return control->Check();
}

Status Refiner::RefineThreshold(const RefineQuery& query, double eps,
                                Measure measure,
                                const std::vector<kv::Row>& rows,
                                const QueryContext* control,
                                std::vector<SearchResult>* out,
                                RefineStats* stats) const {
  const size_t n = rows.size();
  // Hit slots indexed by row: workers never contend, and compacting in
  // row order afterwards makes the output independent of thread count.
  std::vector<uint64_t> ids(n, 0);
  std::vector<double> dist(n, 0.0);
  std::vector<char> hit(n, 0);
  const FlatView qv = query.view();

  Status s = ProcessRows(
      rows, control,
      [&](size_t i, const StoredTrajectory& t, const FlatView& tv,
          const geo::Mbr& mbr, Scratch* sc) {
        Stopwatch watch;
        if (LowerBoundExceeds(measure, query, tv, mbr, eps)) {
          ++sc->stats.lb_rejected;
          sc->stats.lb_ms += watch.ElapsedMillis();
          return;
        }
        sc->stats.lb_ms += watch.ElapsedMillis();
        watch.Reset();
        ++sc->stats.dp_runs;
        double d = 0.0;
        if (SimilarityWithinDistanceFlat(measure, qv, tv, eps, &d,
                                         &sc->dp)) {
          ids[i] = t.id;
          dist[i] = d;
          hit[i] = 1;
        }
        sc->stats.dp_ms += watch.ElapsedMillis();
      },
      stats);

  for (size_t i = 0; i < n; ++i) {
    if (hit[i]) out->push_back(SearchResult{ids[i], dist[i]});
  }
  return s;
}

Status TopKRefiner::RefineBatch(const std::vector<kv::Row>& rows,
                                const QueryContext* control,
                                RefineStats* stats) {
  const FlatView qv = query_->view();
  return engine_->ProcessRows(
      rows, control,
      [&](size_t, const StoredTrajectory& t, const FlatView& tv,
          const geo::Mbr& mbr, Refiner::Scratch* sc) {
        // A stale (larger) bound only admits extra candidates that the
        // heap then rejects; it can never drop one that belongs.
        const double bound = bound_.load(std::memory_order_relaxed);
        Stopwatch watch;
        if (LowerBoundExceeds(measure_, *query_, tv, mbr, bound)) {
          ++sc->stats.lb_rejected;
          sc->stats.lb_ms += watch.ElapsedMillis();
          return;
        }
        sc->stats.lb_ms += watch.ElapsedMillis();
        watch.Reset();
        ++sc->stats.dp_runs;
        double d = 0.0;
        const bool within =
            SimilarityWithinDistanceFlat(measure_, qv, tv, bound, &d,
                                         &sc->dp);
        sc->stats.dp_ms += watch.ElapsedMillis();
        if (within) Offer(SearchResult{t.id, d});
      },
      stats);
}

void TopKRefiner::Offer(const SearchResult& r) {
  if (k_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.size() < k_) {
    heap_.push(r);
    if (heap_.size() == k_) {
      bound_.store(heap_.top().distance, std::memory_order_relaxed);
    }
    return;
  }
  // Ties at the k-th distance resolve by id — the (distance, id) total
  // order is what makes parallel refinement sequentially equivalent.
  if (r < heap_.top()) {
    heap_.pop();
    heap_.push(r);
    bound_.store(heap_.top().distance, std::memory_order_relaxed);
  }
}

void TopKRefiner::Drain(std::vector<SearchResult>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  out->reserve(out->size() + heap_.size());
  const size_t first = out->size();
  while (!heap_.empty()) {
    out->push_back(heap_.top());
    heap_.pop();
  }
  std::reverse(out->begin() + first, out->end());
}

}  // namespace core
}  // namespace trass
