// Trajectory model (paper Definition 1). Coordinates are normalized into
// the unit square before indexing; workload generators perform the
// normalization from lon/lat.

#ifndef TRASS_CORE_TRAJECTORY_H_
#define TRASS_CORE_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace trass {
namespace core {

struct Trajectory {
  uint64_t id = 0;
  std::vector<geo::Point> points;

  geo::Mbr Bounds() const { return geo::Mbr::Of(points); }
};

/// A query answer: trajectory id plus its distance to the query.
struct SearchResult {
  uint64_t id = 0;
  double distance = 0.0;

  friend bool operator<(const SearchResult& a, const SearchResult& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_TRAJECTORY_H_
