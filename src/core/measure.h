// Similarity measures supported by the framework (paper Sections II, VII).

#ifndef TRASS_CORE_MEASURE_H_
#define TRASS_CORE_MEASURE_H_

namespace trass {
namespace core {

enum class Measure {
  kFrechet,    // discrete Fréchet (the paper's default)
  kHausdorff,  // symmetric Hausdorff
  kDtw,        // dynamic time warping (sum of matched distances)
};

inline const char* MeasureName(Measure m) {
  switch (m) {
    case Measure::kFrechet:
      return "Frechet";
    case Measure::kHausdorff:
      return "Hausdorff";
    case Measure::kDtw:
      return "DTW";
  }
  return "?";
}

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_MEASURE_H_
