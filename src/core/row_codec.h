// Row codec implementing the storage schema of Table I:
//
//   rowkey = shard (1 byte) | index value (8 bytes, big endian) |
//            tid (8 bytes, big endian)
//   value  = points | dp-points (representative indices) | dp-mbrs
//            (oriented boxes)
//
// Big-endian components keep byte-lexicographic key order equal to
// (shard, index value, tid) numeric order, so the global-pruning value
// ranges translate directly into key-range scans.
//
// A string key encoding (quadrant digits + position-code byte) is also
// provided to reproduce the paper's Figure 13(c) storage comparison
// (TraSS vs TraSS-S).

#ifndef TRASS_CORE_ROW_CODEC_H_
#define TRASS_CORE_ROW_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dp_features.h"
#include "core/trajectory.h"
#include "index/xzstar.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace core {

/// A decoded row: the trajectory plus its precomputed features.
struct StoredTrajectory {
  uint64_t id = 0;
  std::vector<geo::Point> points;
  DpFeatures features;
};

// ---- keys ----

std::string EncodeRowKey(uint8_t shard, int64_t index_value, uint64_t tid);

/// Parses a key produced by EncodeRowKey.
Status DecodeRowKey(const Slice& key, uint8_t* shard, int64_t* index_value,
                    uint64_t* tid);

/// The shard-less key-range [start, end) covering index values
/// [lo, hi] for every tid (RegionStore prepends the shard byte).
void IndexValueRange(int64_t lo, int64_t hi, std::string* start,
                     std::string* end);

/// String-encoded key (paper's TraSS-S variant): shard | quadrant digits
/// | position byte | tid.
std::string EncodeStringRowKey(uint8_t shard,
                               const index::XzStar::IndexSpace& space,
                               uint64_t tid);

// ---- values ----

std::string EncodeRowValue(const std::vector<geo::Point>& points,
                           const DpFeatures& features);

Status DecodeRowValue(const Slice& value, std::vector<geo::Point>* points,
                      DpFeatures* features);

/// Decodes a full (integer-keyed) row.
Status DecodeRow(const Slice& key, const Slice& value, StoredTrajectory* out);

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_ROW_CODEC_H_
