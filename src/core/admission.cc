#include "core/admission.h"

#include <chrono>

#include "util/stopwatch.h"

namespace trass {
namespace core {

Status AdmissionController::Admit(double* waited_ms) {
  if (waited_ms != nullptr) *waited_ms = 0.0;
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_concurrent <= 0) {  // admission control disabled
    ++counters_.admitted;
    ++in_flight_;
    return Status::OK();
  }
  if (in_flight_ < options_.max_concurrent) {
    ++counters_.admitted;
    ++in_flight_;
    return Status::OK();
  }
  if (waiting_ >= options_.max_queue) {
    ++counters_.shed_queue_full;
    return Status::Busy("admission queue full (" +
                        std::to_string(in_flight_) + " queries in flight)");
  }
  ++waiting_;
  ++counters_.queued;
  Stopwatch wait;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              options_.queue_timeout_ms));
  const bool got_slot = slot_free_.wait_until(lock, deadline, [this] {
    return options_.max_concurrent <= 0 ||
           in_flight_ < options_.max_concurrent;
  });
  --waiting_;
  if (waited_ms != nullptr) *waited_ms = wait.ElapsedMillis();
  if (!got_slot) {
    ++counters_.shed_timeout;
    return Status::Busy("admission queue timeout after " +
                        std::to_string(options_.queue_timeout_ms) + " ms");
  }
  ++counters_.admitted;
  ++in_flight_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_free_.notify_one();
}

void AdmissionController::Configure(const Options& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  // Raised limits may unblock queued callers.
  slot_free_.notify_all();
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

AdmissionController::Options AdmissionController::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

}  // namespace core
}  // namespace trass
