// Local filtering (paper Section V-D): cheap rejection of retrieved
// candidates before the exact O(n*m) similarity computation.
//
//   Lemma 12 — start/end point distances must be <= eps (Fréchet, DTW).
//   Lemma 13 — every representative point of one trajectory must be
//              within eps of the union of the other's DP boxes.
//   Lemma 14 — every DP box must have all four edges within eps of the
//              other trajectory's DP boxes.
//
// The filter implements kv::ScanFilter so it can be pushed down into the
// storage scan (the coprocessor analog); rows it rejects never reach the
// query processor.

#ifndef TRASS_CORE_LOCAL_FILTER_H_
#define TRASS_CORE_LOCAL_FILTER_H_

#include <atomic>
#include <cstdint>

#include "core/dp_features.h"
#include "core/measure.h"
#include "core/pruning.h"
#include "core/row_codec.h"
#include "kv/scan.h"

namespace trass {
namespace core {

/// The pure predicate: true when (query, candidate) survives Lemmas
/// 12-14 under `eps` (i.e. the pair still *may* be similar).
bool LocalFilterPass(const QueryGeometry& query,
                     const StoredTrajectory& candidate, double eps,
                     Measure measure);

/// Pushdown form. Thread-safe; counts scanned/kept rows for the metrics.
class LocalScanFilter final : public kv::ScanFilter {
 public:
  LocalScanFilter(const QueryGeometry* query, double eps, Measure measure)
      : query_(query), eps_(eps), measure_(measure) {}

  bool Keep(const Slice& key, const Slice& value) const override;

  uint64_t scanned() const { return scanned_.load(); }
  uint64_t kept() const { return kept_.load(); }

 private:
  const QueryGeometry* query_;
  const double eps_;
  const Measure measure_;
  mutable std::atomic<uint64_t> scanned_{0};
  mutable std::atomic<uint64_t> kept_{0};
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_LOCAL_FILTER_H_
