#include "core/local_filter.h"

namespace trass {
namespace core {

bool LocalFilterPass(const QueryGeometry& query,
                     const StoredTrajectory& candidate, double eps,
                     Measure measure) {
  if (candidate.points.empty()) return false;

  // Lemma 12: Fréchet and DTW both bound d(q_1, t_1) and d(q_n, t_m);
  // Hausdorff does not pair endpoints, so the lemma is skipped for it.
  if (measure != Measure::kHausdorff) {
    if (geo::Distance(query.points.front(), candidate.points.front()) > eps) {
      return false;
    }
    if (geo::Distance(query.points.back(), candidate.points.back()) > eps) {
      return false;
    }
  }

  // Lemma 13, both directions: representative points against the other
  // trajectory's DP boxes.
  for (const geo::Point& p : candidate.features.rep_points) {
    if (query.features.DistancePointToBoxes(p) > eps) return false;
  }
  for (const geo::Point& q : query.features.rep_points) {
    if (candidate.features.DistancePointToBoxes(q) > eps) return false;
  }

  // Lemma 14, both directions: DP boxes against DP boxes.
  for (const geo::OrientedBox& box : candidate.features.boxes) {
    if (BoxToFeatureDistance(box, query.features) > eps) return false;
  }
  for (const geo::OrientedBox& box : query.features.boxes) {
    if (BoxToFeatureDistance(box, candidate.features) > eps) return false;
  }

  return true;
}

bool LocalScanFilter::Keep(const Slice& key, const Slice& value) const {
  scanned_.fetch_add(1, std::memory_order_relaxed);
  StoredTrajectory candidate;
  if (!DecodeRow(key, value, &candidate).ok()) return false;
  if (!LocalFilterPass(*query_, candidate, eps_, measure_)) return false;
  kept_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace core
}  // namespace trass
