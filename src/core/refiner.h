// Refinement engine: the exact-similarity stage both query paths run on
// the candidates that survive global pruning and local filtering.
//
// What it does beyond the hand-rolled loops it replaced:
//   - decodes candidate rows into structure-of-arrays buffers (flat
//     x[]/y[] arrays, reused via a per-worker scratch arena) so the DP
//     distance passes in core/similarity.cc auto-vectorize;
//   - runs a cheap lower-bound cascade per pair (query-MBR-to-candidate-
//     MBR, endpoints, directed point-to-MBR) that proves dist > bound
//     without touching the O(n*m) DP for most losers;
//   - fans candidates out over a cancellation-aware
//     ThreadPool::ParallelFor in contiguous chunks, polling the
//     QueryContext before every candidate;
//   - for top-k, shares one monotonically tightening k-th-distance bound
//     (an atomic) across all workers and batches, so one worker's
//     improvement shrinks every other worker's early-abandon threshold.
//
// Determinism contract: for a fixed row set the results are identical to
// serial execution regardless of thread count. Threshold refinement
// writes each hit into its candidate's slot and compacts in row order;
// top-k keeps the k smallest results under the total order
// (distance, id), which no interleaving can change (a candidate is only
// ever abandoned against a bound that its distance provably exceeds, and
// the bound never rises). Under a cooperative stop the results collected
// so far remain a verified subset of the full answer.

#ifndef TRASS_CORE_REFINER_H_
#define TRASS_CORE_REFINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <queue>
#include <vector>

#include "core/measure.h"
#include "core/row_codec.h"
#include "core/similarity.h"
#include "core/trajectory.h"
#include "geo/mbr.h"
#include "kv/scan.h"
#include "util/query_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace trass {
namespace core {

/// Refine-stage counters, folded into QueryMetrics by the query paths.
/// The *_ms fields are summed across workers (CPU time, not wall time).
struct RefineStats {
  uint64_t refined = 0;      // candidates decoded and considered
  uint64_t lb_rejected = 0;  // lower-bound cascade skipped the DP
  uint64_t dp_runs = 0;      // exact DP kernels executed
  double decode_ms = 0.0;    // row decode + SoA flatten
  double lb_ms = 0.0;        // lower-bound cascade
  double dp_ms = 0.0;        // exact DP kernels

  void Fold(const RefineStats& other) {
    refined += other.refined;
    lb_rejected += other.lb_rejected;
    dp_runs += other.dp_runs;
    decode_ms += other.decode_ms;
    lb_ms += other.lb_ms;
    dp_ms += other.dp_ms;
  }
};

/// Query-side state flattened once per query and shared (read-only) by
/// every refine worker.
struct RefineQuery {
  std::vector<double> x, y;
  geo::Mbr mbr;

  FlatView view() const { return FlatView{x.data(), y.data(), x.size()}; }

  static RefineQuery Make(const std::vector<geo::Point>& points);
};

/// The full cascade's lower bound on measure(query, candidate) — every
/// level evaluated, the max returned. Exposed for tests and benches; the
/// engine itself runs the short-circuiting LowerBoundExceeds.
double RefineLowerBound(Measure measure, const RefineQuery& query,
                        const FlatView& t, const geo::Mbr& t_mbr);

/// True when some cascade level proves measure(query, candidate) > bound,
/// cheapest level first: (1) query-MBR to candidate-MBR distance, O(1),
/// sound for all measures; (2) endpoint distances (Lemma 12), O(1),
/// Fréchet and DTW; (3) directed max point-to-MBR distance both ways,
/// O(n + m), sound for all measures (every point is matched by each
/// measure at least once, at distance >= its distance to the other
/// trajectory's MBR).
bool LowerBoundExceeds(Measure measure, const RefineQuery& query,
                       const FlatView& t, const geo::Mbr& t_mbr,
                       double bound);

class Refiner {
 public:
  /// Refines on `pool` with up to `threads` chunks in flight; a null pool
  /// or threads <= 1 refines serially on the calling thread. The pool
  /// (shared with other concurrent queries) must outlive the refiner.
  Refiner(ThreadPool* pool, size_t threads)
      : pool_(pool), threads_(pool == nullptr ? 1 : (threads < 1 ? 1 : threads)) {}

  Refiner(const Refiner&) = delete;
  Refiner& operator=(const Refiner&) = delete;

  size_t threads() const { return threads_; }

  /// Threshold refinement: appends every candidate with
  /// measure(query, candidate) <= eps to `out` as (id, exact distance),
  /// in row order. Returns the first decode error, else the control's
  /// stop status, else OK; on a stop `out` holds the verified subset.
  Status RefineThreshold(const RefineQuery& query, double eps,
                         Measure measure, const std::vector<kv::Row>& rows,
                         const QueryContext* control,
                         std::vector<SearchResult>* out,
                         RefineStats* stats) const;

 private:
  friend class TopKRefiner;

  /// Per-chunk scratch arena: decode buffers, SoA arrays, and DP rows are
  /// reused across every candidate the chunk refines.
  struct Scratch {
    StoredTrajectory decoded;
    std::vector<double> tx, ty;
    DpScratch dp;
    RefineStats stats;
    Status error;
  };

  using CandidateFn =
      std::function<void(size_t index, const StoredTrajectory& t,
                         const FlatView& tv, const geo::Mbr& mbr,
                         Scratch* scratch)>;

  /// Decodes and flattens rows in contiguous chunks (serial or via the
  /// pool), invoking `fn` per surviving candidate. Polls `control` before
  /// every candidate. Folds per-chunk stats into `stats`.
  Status ProcessRows(const std::vector<kv::Row>& rows,
                     const QueryContext* control, const CandidateFn& fn,
                     RefineStats* stats) const;

  ThreadPool* pool_;
  size_t threads_;
};

/// One top-k refinement session: feeds batches of candidate rows through
/// the engine against a shared, monotonically tightening k-th-distance
/// bound. The final contents are exactly the k smallest (distance, id)
/// results among all offered candidates — identical to serial execution.
class TopKRefiner {
 public:
  TopKRefiner(const Refiner* engine, const RefineQuery* query, size_t k,
              Measure measure)
      : engine_(engine), query_(query), k_(k), measure_(measure) {}

  TopKRefiner(const TopKRefiner&) = delete;
  TopKRefiner& operator=(const TopKRefiner&) = delete;

  /// Refines one batch of rows; same status contract as RefineThreshold.
  Status RefineBatch(const std::vector<kv::Row>& rows,
                     const QueryContext* control, RefineStats* stats);

  /// The current k-th distance (+inf until k results exist). Never rises;
  /// safe to read concurrently with a running batch.
  double CurrentBound() const {
    return bound_.load(std::memory_order_relaxed);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return heap_.size();
  }

  /// Moves the results out, ascending by (distance, id).
  void Drain(std::vector<SearchResult>* out);

 private:
  void Offer(const SearchResult& r);

  const Refiner* engine_;
  const RefineQuery* query_;
  const size_t k_;
  const Measure measure_;
  mutable std::mutex mu_;
  std::priority_queue<SearchResult> heap_;  // worst of the best k on top
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_REFINER_H_
