#include "core/row_codec.h"

#include "util/coding.h"

namespace trass {
namespace core {

namespace {
constexpr size_t kIntKeyLength = 1 + 8 + 8;
}  // namespace

std::string EncodeRowKey(uint8_t shard, int64_t index_value, uint64_t tid) {
  std::string key;
  key.reserve(kIntKeyLength);
  key.push_back(static_cast<char>(shard));
  PutBigEndian64(&key, static_cast<uint64_t>(index_value));
  PutBigEndian64(&key, tid);
  return key;
}

Status DecodeRowKey(const Slice& key, uint8_t* shard, int64_t* index_value,
                    uint64_t* tid) {
  if (key.size() != kIntKeyLength) {
    return Status::Corruption("bad row key length");
  }
  *shard = static_cast<uint8_t>(key[0]);
  *index_value = static_cast<int64_t>(DecodeBigEndian64(key.data() + 1));
  *tid = DecodeBigEndian64(key.data() + 9);
  return Status::OK();
}

void IndexValueRange(int64_t lo, int64_t hi, std::string* start,
                     std::string* end) {
  start->clear();
  end->clear();
  PutBigEndian64(start, static_cast<uint64_t>(lo));
  PutBigEndian64(end, static_cast<uint64_t>(hi) + 1);
}

std::string EncodeStringRowKey(uint8_t shard,
                               const index::XzStar::IndexSpace& space,
                               uint64_t tid) {
  std::string key;
  key.push_back(static_cast<char>(shard));
  key += space.seq.ToString();
  key.push_back(static_cast<char>('a' + space.pos));  // 1..10 -> 'b'..'k'
  PutBigEndian64(&key, tid);
  return key;
}

std::string EncodeRowValue(const std::vector<geo::Point>& points,
                           const DpFeatures& features) {
  std::string value;
  PutVarint32(&value, static_cast<uint32_t>(points.size()));
  for (const geo::Point& p : points) {
    PutDouble(&value, p.x);
    PutDouble(&value, p.y);
  }
  PutVarint32(&value, static_cast<uint32_t>(features.rep_indices.size()));
  uint32_t prev = 0;
  for (uint32_t idx : features.rep_indices) {
    PutVarint32(&value, idx - prev);  // delta encoding; indices ascend
    prev = idx;
  }
  PutVarint32(&value, static_cast<uint32_t>(features.boxes.size()));
  for (const geo::OrientedBox& box : features.boxes) {
    for (int c = 0; c < 4; ++c) {
      PutDouble(&value, box.corner(c).x);
      PutDouble(&value, box.corner(c).y);
    }
  }
  return value;
}

Status DecodeRowValue(const Slice& value, std::vector<geo::Point>* points,
                      DpFeatures* features) {
  Slice input = value;
  uint32_t n = 0;
  if (!GetVarint32(&input, &n)) return Status::Corruption("bad point count");
  points->clear();
  points->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    geo::Point p;
    if (!GetDouble(&input, &p.x) || !GetDouble(&input, &p.y)) {
      return Status::Corruption("bad point data");
    }
    points->push_back(p);
  }
  uint32_t n_rep = 0;
  if (!GetVarint32(&input, &n_rep)) {
    return Status::Corruption("bad dp-point count");
  }
  features->rep_indices.clear();
  features->rep_points.clear();
  features->rep_indices.reserve(n_rep);
  features->rep_points.reserve(n_rep);
  uint32_t idx = 0;
  for (uint32_t i = 0; i < n_rep; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(&input, &delta)) {
      return Status::Corruption("bad dp-point index");
    }
    idx += delta;
    if (idx >= points->size()) {
      return Status::Corruption("dp-point index out of range");
    }
    features->rep_indices.push_back(idx);
    features->rep_points.push_back((*points)[idx]);
  }
  uint32_t n_boxes = 0;
  if (!GetVarint32(&input, &n_boxes)) {
    return Status::Corruption("bad dp-mbr count");
  }
  features->boxes.clear();
  features->boxes.reserve(n_boxes);
  for (uint32_t i = 0; i < n_boxes; ++i) {
    geo::Point corners[4];
    for (int c = 0; c < 4; ++c) {
      if (!GetDouble(&input, &corners[c].x) ||
          !GetDouble(&input, &corners[c].y)) {
        return Status::Corruption("bad dp-mbr data");
      }
    }
    features->boxes.emplace_back(corners);
  }
  return Status::OK();
}

Status DecodeRow(const Slice& key, const Slice& value, StoredTrajectory* out) {
  uint8_t shard;
  int64_t index_value;
  Status s = DecodeRowKey(key, &shard, &index_value, &out->id);
  if (!s.ok()) return s;
  return DecodeRowValue(value, &out->points, &out->features);
}

}  // namespace core
}  // namespace trass
