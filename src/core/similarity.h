// Exact similarity computations (discrete Fréchet, Hausdorff, DTW) plus
// threshold decision variants with early abandoning — the expensive
// "refine" step that global pruning and local filtering exist to avoid.
//
// Two kernel families:
//   - vector-of-Point APIs: the reference scalar implementations, kept
//     unchanged as the correctness baseline;
//   - flat structure-of-arrays (FlatView) kernels: the serving-path
//     implementations the refinement engine (core/refiner.h) runs. The
//     Fréchet/DTW DPs sweep by anti-diagonals (cells of one anti-diagonal
//     are mutually independent, so the recurrence itself vectorizes over
//     contiguous x[]/y[] arrays); Hausdorff runs blocked nearest-point
//     scans with early exits. Both families compute identical values
//     (the kernel-parity test enforces it).

#ifndef TRASS_CORE_SIMILARITY_H_
#define TRASS_CORE_SIMILARITY_H_

#include <cstddef>
#include <vector>

#include "core/measure.h"
#include "geo/point.h"

namespace trass {
namespace core {

/// Structure-of-arrays view of a trajectory: n points at (x[i], y[i]).
/// Non-owning; the arrays must outlive the call.
struct FlatView {
  const double* x = nullptr;
  const double* y = nullptr;
  size_t n = 0;
};

/// Reusable buffers for the flat DP kernels. The row-based within
/// kernels use two rolling DP rows plus one distance row; the exact
/// Fréchet/DTW kernels run an anti-diagonal wavefront (cells along an
/// anti-diagonal are mutually independent, so the min/max recurrence
/// itself vectorizes) and use three rolling diagonals plus a reversed
/// copy of the candidate. The refinement engine keeps one DpScratch per
/// worker so refining a stream of candidates allocates nothing after
/// warm-up.
struct DpScratch {
  std::vector<double> prev, curr, dist;        // row kernels (size m)
  std::vector<double> diag0, diag1, diag2;     // wavefront (size n)
  std::vector<double> rev_x, rev_y;            // reversed candidate (size m)

  /// Grows the rows to hold at least `m` columns (never shrinks).
  void Reserve(size_t m) {
    if (prev.size() < m) {
      prev.resize(m);
      curr.resize(m);
      dist.resize(m);
    }
  }

  /// Grows the wavefront buffers for an n-by-m DP (never shrinks).
  void ReserveDiag(size_t n, size_t m) {
    if (diag0.size() < n) {
      diag0.resize(n);
      diag1.resize(n);
      diag2.resize(n);
    }
    if (rev_x.size() < m) {
      rev_x.resize(m);
      rev_y.resize(m);
    }
  }
};

/// Discrete Fréchet distance (Definition 2). O(n*m) time, O(m) space.
double DiscreteFrechet(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t);

/// Symmetric Hausdorff distance (Definition 12).
double Hausdorff(const std::vector<geo::Point>& q,
                 const std::vector<geo::Point>& t);

/// Dynamic time warping distance (Definition 13): sum of matched
/// Euclidean distances along the optimal warping path.
double Dtw(const std::vector<geo::Point>& q,
           const std::vector<geo::Point>& t);

/// True iff measure(q, t) <= eps, abandoning the computation as soon as
/// the bound is provably exceeded.
bool FrechetWithin(const std::vector<geo::Point>& q,
                   const std::vector<geo::Point>& t, double eps);
bool HausdorffWithin(const std::vector<geo::Point>& q,
                     const std::vector<geo::Point>& t, double eps);
bool DtwWithin(const std::vector<geo::Point>& q,
               const std::vector<geo::Point>& t, double eps);

/// Decision + exact distance in one DP: true iff measure(q, t) <= eps, in
/// which case *distance receives the exact distance (untouched otherwise).
/// One pass where the query paths previously ran Within followed by the
/// full exact computation on every hit.
bool FrechetWithinDistance(const std::vector<geo::Point>& q,
                           const std::vector<geo::Point>& t, double eps,
                           double* distance);
bool HausdorffWithinDistance(const std::vector<geo::Point>& q,
                             const std::vector<geo::Point>& t, double eps,
                             double* distance);
bool DtwWithinDistance(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t, double eps,
                       double* distance);

/// Dispatch helpers.
double Similarity(Measure m, const std::vector<geo::Point>& q,
                  const std::vector<geo::Point>& t);
bool SimilarityWithin(Measure m, const std::vector<geo::Point>& q,
                      const std::vector<geo::Point>& t, double eps);
bool SimilarityWithinDistance(Measure m, const std::vector<geo::Point>& q,
                              const std::vector<geo::Point>& t, double eps,
                              double* distance);

// ---- flat (structure-of-arrays) kernels ----
//
// Same results as the vector APIs; `scratch` may be shared across calls
// from one thread but never across threads. An infinite `eps` makes the
// within-distance kernels unconditional exact computations.

double DiscreteFrechetFlat(const FlatView& q, const FlatView& t,
                           DpScratch* scratch);
double HausdorffFlat(const FlatView& q, const FlatView& t);
double DtwFlat(const FlatView& q, const FlatView& t, DpScratch* scratch);

bool FrechetWithinDistanceFlat(const FlatView& q, const FlatView& t,
                               double eps, double* distance,
                               DpScratch* scratch);
bool HausdorffWithinDistanceFlat(const FlatView& q, const FlatView& t,
                                 double eps, double* distance);
bool DtwWithinDistanceFlat(const FlatView& q, const FlatView& t, double eps,
                           double* distance, DpScratch* scratch);

double SimilarityFlat(Measure m, const FlatView& q, const FlatView& t,
                      DpScratch* scratch);
bool SimilarityWithinDistanceFlat(Measure m, const FlatView& q,
                                  const FlatView& t, double eps,
                                  double* distance, DpScratch* scratch);

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_SIMILARITY_H_
