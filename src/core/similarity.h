// Exact similarity computations (discrete Fréchet, Hausdorff, DTW) plus
// threshold decision variants with early abandoning — the expensive
// "refine" step that global pruning and local filtering exist to avoid.

#ifndef TRASS_CORE_SIMILARITY_H_
#define TRASS_CORE_SIMILARITY_H_

#include <vector>

#include "core/measure.h"
#include "geo/point.h"

namespace trass {
namespace core {

/// Discrete Fréchet distance (Definition 2). O(n*m) time, O(m) space.
double DiscreteFrechet(const std::vector<geo::Point>& q,
                       const std::vector<geo::Point>& t);

/// Symmetric Hausdorff distance (Definition 12).
double Hausdorff(const std::vector<geo::Point>& q,
                 const std::vector<geo::Point>& t);

/// Dynamic time warping distance (Definition 13): sum of matched
/// Euclidean distances along the optimal warping path.
double Dtw(const std::vector<geo::Point>& q,
           const std::vector<geo::Point>& t);

/// True iff measure(q, t) <= eps, abandoning the computation as soon as
/// the bound is provably exceeded.
bool FrechetWithin(const std::vector<geo::Point>& q,
                   const std::vector<geo::Point>& t, double eps);
bool HausdorffWithin(const std::vector<geo::Point>& q,
                     const std::vector<geo::Point>& t, double eps);
bool DtwWithin(const std::vector<geo::Point>& q,
               const std::vector<geo::Point>& t, double eps);

/// Dispatch helpers.
double Similarity(Measure m, const std::vector<geo::Point>& q,
                  const std::vector<geo::Point>& t);
bool SimilarityWithin(Measure m, const std::vector<geo::Point>& q,
                      const std::vector<geo::Point>& t, double eps);

}  // namespace core
}  // namespace trass

#endif  // TRASS_CORE_SIMILARITY_H_
