// Wire codec for the multi-process shard harness: ShardRequest /
// ShardResponse <-> length-prefixed binary frames. Built on the same
// util/coding primitives as the row codec; versioned so a frame from a
// different build fails loudly (Corruption) instead of misparsing.
//
// Frame layout (both directions):
//   u32 big-endian payload length | payload
// Payload starts with a version byte; DecodeX reject anything else.
//
// Status crosses the wire as (code byte, message); the code table is
// private to wire.cc and round-trips every Status constructor in
// util/status.h.

#ifndef TRASS_SERVE_WIRE_H_
#define TRASS_SERVE_WIRE_H_

#include <string>
#include <vector>

#include "core/trajectory.h"
#include "serve/shard_transport.h"
#include "util/slice.h"
#include "util/status.h"

namespace trass {
namespace serve {

/// Maximum accepted payload (guards a corrupt length prefix from
/// triggering a giant allocation).
constexpr uint32_t kMaxWireFrameBytes = 256u << 20;

/// Appends the 4-byte length prefix + `payload` to `out`.
void FrameMessage(const std::string& payload, std::string* out);

void EncodeShardRequest(const ShardRequest& request, std::string* payload);
Status DecodeShardRequest(Slice payload, ShardRequest* request);

/// `exec_status` is the shard-side Execute() result the frame carries
/// alongside the response payload.
void EncodeShardResponse(const ShardResponse& response,
                         const Status& exec_status, std::string* payload);
Status DecodeShardResponse(Slice payload, ShardResponse* response,
                           Status* exec_status);

/// Standalone trajectory-list codec (the kPut payload encoding), shared
/// with the coordinator's hinted-handoff journal so a journaled write
/// round-trips through exactly the bytes the wire would carry.
void EncodeTrajectoryList(const std::vector<core::Trajectory>& trajectories,
                          std::string* dst);
Status DecodeTrajectoryList(Slice payload,
                            std::vector<core::Trajectory>* trajectories);

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_WIRE_H_
