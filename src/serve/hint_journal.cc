#include "serve/hint_journal.h"

#include <algorithm>
#include <utility>

#include "kv/log_reader.h"
#include "serve/wire.h"
#include "util/coding.h"
#include "util/slice.h"

namespace trass {
namespace serve {

namespace {

constexpr char kHintRecord = 0x01;
constexpr char kAppliedRecord = 0x02;

std::string LogPath(const std::string& dir) { return dir + "/hints.log"; }
std::string TmpPath(const std::string& dir) { return dir + "/hints.log.tmp"; }

void EncodeHintRecord(uint64_t seq, size_t shard,
                      const std::vector<core::Trajectory>& rows,
                      std::string* record) {
  record->push_back(kHintRecord);
  PutVarint64(record, seq);
  PutVarint64(record, shard);
  EncodeTrajectoryList(rows, record);
}

}  // namespace

HintJournal::HintJournal(kv::Env* env, std::string dir, bool sync)
    : env_(env), dir_(std::move(dir)), sync_(sync) {}

HintJournal::~HintJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  writer_.reset();
  if (file_ != nullptr) {
    file_->Sync();
    file_->Close();
  }
}

Status HintJournal::Open(const Options& options,
                         std::unique_ptr<HintJournal>* journal) {
  journal->reset();
  if (options.dir.empty()) {
    return Status::InvalidArgument("hint journal needs a directory");
  }
  kv::Env* env = options.env != nullptr ? options.env : kv::Env::Default();
  if (!env->FileExists(options.dir)) {
    Status s = env->CreateDir(options.dir);
    // A concurrent creator is fine; a missing parent is not.
    if (!s.ok() && !env->FileExists(options.dir)) return s;
  }
  std::unique_ptr<HintJournal> j(
      new HintJournal(env, options.dir, options.sync));
  Status s = j->Recover();
  if (!s.ok()) return s;
  *journal = std::move(j);
  return Status::OK();
}

Status HintJournal::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (env_->FileExists(LogPath(dir_))) {
    std::unique_ptr<kv::SequentialFile> file;
    Status s = env_->NewSequentialFile(LogPath(dir_), &file);
    if (!s.ok()) return s;
    kv::log::Reader reader(file.get(), /*checksum=*/true);
    Slice record;
    std::string scratch;
    // A torn tail reads as end-of-log (the kv WAL convention): at most
    // the unsynced suffix is lost, and with sync on nothing acked was
    // in it.
    while (reader.ReadRecord(&record, &scratch)) {
      if (record.size() < 1) continue;
      const char type = record[0];
      record.remove_prefix(1);
      uint64_t seq = 0;
      if (!GetVarint64(&record, &seq)) continue;
      if (seq >= next_seq_) next_seq_ = seq + 1;
      if (type == kAppliedRecord) {
        pending_.erase(seq);
        continue;
      }
      if (type != kHintRecord) continue;  // future record kind: skip
      uint64_t shard = 0;
      if (!GetVarint64(&record, &shard)) continue;
      PendingHint hint;
      hint.seq = seq;
      hint.shard = static_cast<size_t>(shard);
      if (!DecodeTrajectoryList(record, &hint.rows).ok()) continue;
      pending_.emplace(seq, std::move(hint));
    }
  }
  stats_.recovered = pending_.size();
  // Always rewrite at open: compacts away applied records, drops any
  // torn tail, and leaves the writer positioned on a clean file.
  return CompactLocked();
}

Status HintJournal::CompactLocked() {
  writer_.reset();
  if (file_ != nullptr) {
    file_->Close();
    file_.reset();
  }
  std::unique_ptr<kv::WritableFile> tmp;
  Status s = env_->NewWritableFile(TmpPath(dir_), &tmp);
  if (!s.ok()) return s;
  {
    kv::log::Writer writer(tmp.get());
    for (const auto& [seq, hint] : pending_) {
      std::string record;
      EncodeHintRecord(seq, hint.shard, hint.rows, &record);
      s = writer.AddRecord(Slice(record));
      if (!s.ok()) return s;
    }
  }
  s = tmp->Sync();
  if (s.ok()) s = tmp->Close();
  if (!s.ok()) return s;
  tmp.reset();
  s = env_->RenameFile(TmpPath(dir_), LogPath(dir_));
  if (!s.ok()) return s;
  // Reopen for appending. NewWritableFile truncates, so re-emit the
  // pending set we just persisted — the rename above already made it
  // durable, this keeps the live file equivalent.
  s = env_->NewWritableFile(LogPath(dir_), &file_);
  if (!s.ok()) return s;
  writer_ = std::make_unique<kv::log::Writer>(file_.get());
  for (const auto& [seq, hint] : pending_) {
    std::string record;
    EncodeHintRecord(seq, hint.shard, hint.rows, &record);
    s = writer_->AddRecord(Slice(record));
    if (!s.ok()) return s;
  }
  if (!pending_.empty()) {
    s = file_->Sync();
    if (!s.ok()) return s;
  }
  applied_since_compact_ = 0;
  stats_.compactions++;
  return Status::OK();
}

Status HintJournal::AppendRecordLocked(const std::string& record, bool sync) {
  if (writer_ == nullptr) return Status::IoError("hint journal not open");
  Status s = writer_->AddRecord(Slice(record));
  if (s.ok() && sync) s = file_->Sync();
  return s;
}

Status HintJournal::Append(size_t shard,
                           const std::vector<core::Trajectory>& rows,
                           uint64_t* seq_out) {
  if (rows.empty()) return Status::InvalidArgument("empty hint");
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = next_seq_++;
  std::string record;
  EncodeHintRecord(seq, shard, rows, &record);
  Status s = AppendRecordLocked(record, sync_);
  if (!s.ok()) return s;
  PendingHint hint;
  hint.seq = seq;
  hint.shard = shard;
  hint.rows = rows;
  pending_.emplace(seq, std::move(hint));
  stats_.appended++;
  if (seq_out != nullptr) *seq_out = seq;
  return Status::OK();
}

Status HintJournal::MarkApplied(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(seq);
  if (it == pending_.end()) return Status::OK();
  std::string record;
  record.push_back(kAppliedRecord);
  PutVarint64(&record, seq);
  // Applied markers are not synced: losing one re-delivers an already
  // applied hint after a crash, which idempotent replay absorbs.
  Status s = AppendRecordLocked(record, /*sync=*/false);
  if (!s.ok()) return s;
  pending_.erase(it);
  stats_.applied++;
  applied_since_compact_++;
  // Backlog drained: compact so the file does not grow with history.
  if (pending_.empty() && applied_since_compact_ > 0) {
    s = CompactLocked();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::vector<PendingHint> HintJournal::Pending(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingHint> out;
  for (const auto& [seq, hint] : pending_) {
    if (hint.shard == shard) out.push_back(hint);
  }
  return out;
}

std::vector<size_t> HintJournal::ShardsWithHints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> shards;
  for (const auto& [seq, hint] : pending_) {
    bool seen = false;
    for (size_t s : shards) seen = seen || (s == hint.shard);
    if (!seen) shards.push_back(hint.shard);
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

uint64_t HintJournal::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

HintJournal::Stats HintJournal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats = stats_;
  stats.pending = pending_.size();
  stats.pending_rows = 0;
  for (const auto& [seq, hint] : pending_) {
    stats.pending_rows += hint.rows.size();
  }
  return stats;
}

}  // namespace serve
}  // namespace trass
