// HintJournal: the coordinator's durable hinted-handoff log. When a
// quorum write cannot reach one replica shard (transport fault or open
// circuit breaker), the rows destined for that shard are appended here
// — CRC-framed records through the same kv::log machinery as the
// store's WAL — before the write is acknowledged. A replay pass
// (manual or the coordinator's background replayer) later re-delivers
// each hint to its shard; delivery is at-least-once, which is safe
// because TrassStore re-applies of an identical trajectory are no-ops
// for rows, statistics, and the XZ* directory alike.
//
// On-disk format: one log file (`hints.log`) of records
//   hint     = 0x01 | varint seq | varint shard | trajectory list
//   applied  = 0x02 | varint seq
// where the trajectory list is serve/wire.h's kPut payload encoding.
// Pending = hints minus applied. Open() replays the log tolerating a
// torn tail (a crash mid-append loses at most the unsynced suffix —
// with sync on, nothing acked), then compacts it so applied records do
// not accumulate forever; the compacted file is swapped in by rename.
//
// Thread-safe; Append/MarkApplied serialize on one mutex (hints are
// the slow path — a healthy tier never appends).

#ifndef TRASS_SERVE_HINT_JOURNAL_H_
#define TRASS_SERVE_HINT_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "kv/env.h"
#include "kv/log_writer.h"
#include "util/status.h"

namespace trass {
namespace serve {

/// One journaled write awaiting re-delivery to `shard`.
struct PendingHint {
  uint64_t seq = 0;
  size_t shard = 0;
  std::vector<core::Trajectory> rows;
};

class HintJournal {
 public:
  struct Options {
    kv::Env* env = nullptr;  // nullptr: kv::Env::Default()
    std::string dir;         // created if missing
    /// Sync every appended hint before acking (the durability the
    /// quorum contract relies on); off only for benchmarks.
    bool sync = true;
  };

  struct Stats {
    uint64_t appended = 0;    // hints appended this process
    uint64_t applied = 0;     // hints marked applied this process
    uint64_t recovered = 0;   // pending hints recovered at Open
    uint64_t pending = 0;     // current backlog (records, not rows)
    uint64_t pending_rows = 0;
    uint64_t compactions = 0;
  };

  /// Opens (or creates) the journal in options.dir, recovering any
  /// pending hints from a previous process.
  static Status Open(const Options& options,
                     std::unique_ptr<HintJournal>* journal);

  ~HintJournal();
  HintJournal(const HintJournal&) = delete;
  HintJournal& operator=(const HintJournal&) = delete;

  /// Durably journals `rows` for `shard`; on success *seq (if non-null)
  /// receives the hint's sequence number for MarkApplied.
  Status Append(size_t shard, const std::vector<core::Trajectory>& rows,
                uint64_t* seq = nullptr);

  /// Records that hint `seq` was delivered to its shard. Unknown seqs
  /// are ignored (replay after a crash between delivery and this call
  /// re-delivers — harmless, by idempotency). When the backlog drains
  /// the log is compacted back to empty.
  Status MarkApplied(uint64_t seq);

  /// Snapshot of the pending hints for `shard`, oldest first.
  std::vector<PendingHint> Pending(size_t shard) const;

  /// Shards with at least one pending hint, ascending.
  std::vector<size_t> ShardsWithHints() const;

  uint64_t pending_records() const;
  Stats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  HintJournal(kv::Env* env, std::string dir, bool sync);

  Status Recover();
  /// Rewrites the log with only the pending hints (tmp + rename), then
  /// reopens the writer on the fresh file. Caller holds mu_.
  Status CompactLocked();
  Status AppendRecordLocked(const std::string& record, bool sync);

  kv::Env* env_;
  std::string dir_;
  bool sync_;

  mutable std::mutex mu_;
  std::unique_ptr<kv::WritableFile> file_;
  std::unique_ptr<kv::log::Writer> writer_;
  std::map<uint64_t, PendingHint> pending_;  // seq -> hint, ordered
  uint64_t next_seq_ = 1;
  uint64_t applied_since_compact_ = 0;
  Stats stats_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_HINT_JOURNAL_H_
