#include "serve/circuit_breaker.h"

namespace trass {
namespace serve {

CircuitBreaker::Decision CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Decision::kProceed;
    case State::kOpen:
      if (Clock::now() >= open_until_) {
        state_ = State::kHalfOpen;
        probe_outstanding_ = true;
        ++counters_.probes;
        return Decision::kProbe;
      }
      ++counters_.rejected;
      return Decision::kReject;
    case State::kHalfOpen:
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        ++counters_.probes;
        return Decision::kProbe;
      }
      ++counters_.rejected;
      return Decision::kReject;
  }
  ++counters_.rejected;
  return Decision::kReject;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  if (state_ != State::kClosed) {
    ++counters_.reinstatements;
    state_ = State::kClosed;
    last_error_ = Status::OK();
  }
}

void CircuitBreaker::RecordFailure(const Status& error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error.ok()) last_error_ = error;
  ++consecutive_failures_;
  probe_outstanding_ = false;
  const bool trip = state_ == State::kHalfOpen ||
                    (state_ == State::kClosed &&
                     consecutive_failures_ >= options_.failure_threshold);
  if (trip || state_ == State::kOpen) {
    if (state_ != State::kOpen) ++counters_.trips;
    state_ = State::kOpen;
    open_until_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options_.cooldown_ms));
  }
}

void CircuitBreaker::ReleaseProbe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) probe_outstanding_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreaker::Counters CircuitBreaker::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

Status CircuitBreaker::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace serve
}  // namespace trass
