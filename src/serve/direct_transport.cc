#include "serve/direct_transport.h"

#include <cmath>

#include "core/row_codec.h"
#include "kv/region_store.h"
#include "kv/scan.h"
#include "util/query_context.h"

namespace trass {
namespace serve {

namespace {

core::QueryOptions MakeQueryOptions(const ShardRequest& request,
                                    const std::atomic<bool>* cancel) {
  core::QueryOptions qo;
  qo.deadline_ms = request.deadline_ms;
  qo.cancel = cancel;
  qo.max_candidates = request.max_candidates;
  qo.allow_partial = request.allow_partial;
  return qo;
}

Status ExportTrajectories(core::TrassStore* store,
                          const ShardRequest& request,
                          const std::atomic<bool>* cancel,
                          ShardResponse* response) {
  QueryContext control;
  control.SetDeadlineAfterMillis(request.deadline_ms);
  control.SetCancelFlag(cancel);
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s = store->region_store()->Scan({kv::ScanRange{"", ""}}, nullptr,
                                         &rows, &report, &control);
  if (!s.ok()) return s;
  response->trajectories.reserve(rows.size());
  for (const kv::Row& row : rows) {
    core::StoredTrajectory t;
    s = core::DecodeRow(Slice(row.key), Slice(row.value), &t);
    if (!s.ok()) return s;
    core::Trajectory out;
    out.id = t.id;
    out.points = std::move(t.points);
    response->trajectories.push_back(std::move(out));
  }
  response->metrics.retrieved = rows.size();
  return Status::OK();
}

}  // namespace

Status ExecuteOnStore(core::TrassStore* store, const ShardRequest& request,
                      const std::atomic<bool>* cancel,
                      ShardResponse* response) {
  *response = ShardResponse();
  switch (request.op) {
    case ShardOp::kPing:
      return Status::OK();
    case ShardOp::kThreshold:
      return store->ThresholdSearch(request.query, request.eps,
                                    request.measure, &response->results,
                                    &response->metrics,
                                    MakeQueryOptions(request, cancel));
    case ShardOp::kTopK:
      if (std::isfinite(request.bound)) {
        // Follow-up wave: the coordinator already holds k merged
        // results at distance <= bound, so everything this shard can
        // still contribute lies within it — a threshold search at the
        // bound returns a superset of the shard's contribution with
        // strictly more pruning than a blind local top-k.
        return store->ThresholdSearch(request.query, request.bound,
                                      request.measure, &response->results,
                                      &response->metrics,
                                      MakeQueryOptions(request, cancel));
      }
      return store->TopKSearch(request.query, request.k, request.measure,
                               &response->results, &response->metrics,
                               MakeQueryOptions(request, cancel));
    case ShardOp::kRange:
      return store->RangeQuery(request.window, &response->ids,
                               &response->metrics,
                               MakeQueryOptions(request, cancel));
    case ShardOp::kExport:
      return ExportTrajectories(store, request, cancel, response);
    case ShardOp::kPut:
      return store->PutBatch(request.trajectories);
  }
  return Status::InvalidArgument("unknown shard op");
}

}  // namespace serve
}  // namespace trass
