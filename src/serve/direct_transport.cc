#include "serve/direct_transport.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/row_codec.h"
#include "kv/region_store.h"
#include "kv/scan.h"
#include "serve/partitioner.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/query_context.h"

namespace trass {
namespace serve {

namespace {

core::QueryOptions MakeQueryOptions(const ShardRequest& request,
                                    const std::atomic<bool>* cancel) {
  core::QueryOptions qo;
  qo.deadline_ms = request.deadline_ms;
  qo.cancel = cancel;
  qo.max_candidates = request.max_candidates;
  qo.allow_partial = request.allow_partial;
  return qo;
}

Status ExportTrajectories(core::TrassStore* store,
                          const ShardRequest& request,
                          const std::atomic<bool>* cancel,
                          ShardResponse* response) {
  if (request.export_primary >= 0 && request.num_shards == 0) {
    return Status::InvalidArgument("filtered export needs num_shards");
  }
  QueryContext control;
  control.SetDeadlineAfterMillis(request.deadline_ms);
  control.SetCancelFlag(cancel);
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s = store->region_store()->Scan({kv::ScanRange{"", ""}}, nullptr,
                                         &rows, &report, &control);
  if (!s.ok()) return s;
  const Partitioner partitioner(request.num_shards,
                                store->options().max_resolution);
  response->trajectories.reserve(rows.size());
  for (const kv::Row& row : rows) {
    if (request.export_primary >= 0) {
      // Anti-entropy repair reads one primary partition; placement is
      // a pure function of the key's index value, so the filter never
      // decodes points it will drop.
      uint8_t shard = 0;
      int64_t value = 0;
      uint64_t tid = 0;
      s = core::DecodeRowKey(Slice(row.key), &shard, &value, &tid);
      if (!s.ok()) return s;
      if (partitioner.ShardOfValue(value) !=
          static_cast<size_t>(request.export_primary)) {
        continue;
      }
    }
    core::StoredTrajectory t;
    s = core::DecodeRow(Slice(row.key), Slice(row.value), &t);
    if (!s.ok()) return s;
    core::Trajectory out;
    out.id = t.id;
    out.points = std::move(t.points);
    response->trajectories.push_back(std::move(out));
  }
  response->metrics.retrieved = rows.size();
  return Status::OK();
}

/// kFingerprint: digest this shard's rows per primary partition under
/// the coordinator's topology (request.num_shards). Each partition's
/// digest hashes (id, row crc) pairs in id order, so two replicas agree
/// iff they hold identical row sets — regardless of the order ingest,
/// hint replay, or repair wrote them.
Status FingerprintPartitions(core::TrassStore* store,
                             const ShardRequest& request,
                             const std::atomic<bool>* cancel,
                             ShardResponse* response) {
  if (request.num_shards == 0) {
    return Status::InvalidArgument("fingerprint needs num_shards");
  }
  if (store->options().string_keys) {
    return Status::NotSupported("fingerprint unsupported with string keys");
  }
  QueryContext control;
  control.SetDeadlineAfterMillis(request.deadline_ms);
  control.SetCancelFlag(cancel);
  std::vector<kv::Row> rows;
  kv::ScanReport report;
  Status s = store->region_store()->Scan({kv::ScanRange{"", ""}}, nullptr,
                                         &rows, &report, &control);
  if (!s.ok()) return s;
  const Partitioner partitioner(request.num_shards,
                                store->options().max_resolution);
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint32_t>>> partitions;
  for (const kv::Row& row : rows) {
    uint8_t shard = 0;
    int64_t value = 0;
    uint64_t tid = 0;
    s = core::DecodeRowKey(Slice(row.key), &shard, &value, &tid);
    if (!s.ok()) return s;
    uint32_t row_crc = crc32c::Value(row.key.data(), row.key.size());
    row_crc = crc32c::Extend(row_crc, row.value.data(), row.value.size());
    partitions[partitioner.ShardOfValue(value)].emplace_back(tid, row_crc);
  }
  response->fingerprints.reserve(partitions.size());
  for (auto& [primary, entries] : partitions) {
    std::sort(entries.begin(), entries.end());
    std::string digest;
    for (const auto& [tid, row_crc] : entries) {
      PutVarint64(&digest, tid);
      PutBigEndian32(&digest, row_crc);
    }
    PartitionFingerprint fp;
    fp.primary = primary;
    fp.rows = entries.size();
    fp.crc = crc32c::Value(digest.data(), digest.size());
    response->fingerprints.push_back(fp);
  }
  response->metrics.retrieved = rows.size();
  return Status::OK();
}

}  // namespace

Status ExecuteOnStore(core::TrassStore* store, const ShardRequest& request,
                      const std::atomic<bool>* cancel,
                      ShardResponse* response) {
  *response = ShardResponse();
  switch (request.op) {
    case ShardOp::kPing:
      return Status::OK();
    case ShardOp::kThreshold:
      return store->ThresholdSearch(request.query, request.eps,
                                    request.measure, &response->results,
                                    &response->metrics,
                                    MakeQueryOptions(request, cancel));
    case ShardOp::kTopK:
      if (std::isfinite(request.bound)) {
        // Follow-up wave: the coordinator already holds k merged
        // results at distance <= bound, so everything this shard can
        // still contribute lies within it — a threshold search at the
        // bound returns a superset of the shard's contribution with
        // strictly more pruning than a blind local top-k.
        return store->ThresholdSearch(request.query, request.bound,
                                      request.measure, &response->results,
                                      &response->metrics,
                                      MakeQueryOptions(request, cancel));
      }
      return store->TopKSearch(request.query, request.k, request.measure,
                               &response->results, &response->metrics,
                               MakeQueryOptions(request, cancel));
    case ShardOp::kRange:
      return store->RangeQuery(request.window, &response->ids,
                               &response->metrics,
                               MakeQueryOptions(request, cancel));
    case ShardOp::kExport:
      return ExportTrajectories(store, request, cancel, response);
    case ShardOp::kPut:
      return store->PutBatch(request.trajectories);
    case ShardOp::kFingerprint:
      return FingerprintPartitions(store, request, cancel, response);
  }
  return Status::InvalidArgument("unknown shard op");
}

}  // namespace serve
}  // namespace trass
