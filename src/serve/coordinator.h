// ShardCoordinator: the fault-tolerant scatter-gather serving tier.
//
// N TrassStore shards sit behind ShardTransports (in-process, socket,
// or fault-injected); the coordinator partitions ingest across them
// (serve/partitioner.h) and fans threshold / top-k / within / join
// queries out, merging partial results into answers that are
// byte-identical to a single store over the union dataset when every
// shard answers. The headline is the fault behavior:
//
//   * Replicated placement — with replication_factor R > 1 each
//     trajectory is written to R distinct shards (ring placement), so
//     losing any single shard leaves every key range with a survivor.
//   * Quorum writes — PutBatch writes all replica shards in parallel
//     and acks once write_quorum of R copies committed; per-shard
//     outcomes are reported via WriteReport instead of a silent
//     partial state. Replicas that miss the write (fault or open
//     breaker) divert to the hinted-handoff journal.
//   * Hinted handoff — a WAL-backed journal (serve/hint_journal.h)
//     durably captures writes for unreachable shards; ReplayHints (or
//     the background replayer) re-delivers them when the shard's
//     half-open probe reinstates it. Replay is at-least-once and leans
//     on TrassStore's idempotent re-puts.
//   * Read failover — queries always fan out to every shard; with
//     replication the merge needs only a covering set (every primary
//     partition answered by >= 1 replica), dedups by trajectory id,
//     and stays byte-identical to a single store through a
//     single-shard loss — strict (allow_partial=false) queries
//     included, with the absorbed loss counted in
//     QueryMetrics::shard_failovers rather than flagged partial.
//   * Anti-entropy — ScrubShards fingerprints every shard per primary
//     partition (wire-level kFingerprint op), detects divergent
//     replica groups, and rebuilds stragglers from the union of their
//     peers (ScrubReplicas one level up).
//   * Deadline budgeting — each shard attempt gets a budget carved
//     from the caller's remaining deadline (minus a merge reserve), so
//     a shard self-terminates rather than relying on abandonment.
//   * Hedged requests — a shard quiet past its p95-tracked latency
//     (floored at hedge_min_delay_ms) gets one duplicate request;
//     first response wins, the loser is cancelled. Safe because shard
//     queries are idempotent and each shard's slot merges exactly once.
//   * Retries — failed attempts reuse util/retry_policy's capped
//     exponential schedule; a backoff that would overshoot the
//     remaining deadline fails fast with the last error.
//   * Circuit breakers — consecutive shard failures open a per-shard
//     breaker (closed -> open -> half-open probe, mirroring replica
//     demotion/reinstatement) so dead shards cost one check, not a
//     deadline budget, per query. The write path honors breakers too:
//     a known-open shard is never retried against, its rows go
//     straight to the hint journal.
//   * Verified-partial merges — with allow_partial, uncovered shards
//     degrade the answer to a verified subset, flagged via
//     QueryMetrics::{partial, shards_skipped}; without it, the first
//     unabsorbable fault fails the query with the shard attributed.
//   * Per-tenant token buckets — over-quota tenants shed as one fast
//     Status::Busy at the router, composing with each shard's
//     AdmissionController underneath.
//
// Top-k merges maintain a shared monotonically tightening k-th-distance
// bound: follow-up waves (retries and hedges launched after the first
// k results merged) carry the current bound, which the shard serves as
// a threshold search — strictly more pruning, same answer. With
// replication the bound dedups by id first, so a trajectory answered
// by two replicas cannot over-tighten it.
//
// Thread-safe: queries may run concurrently; hedges/retries of one
// query share its internal state under one mutex. Transports and the
// stores behind them must outlive the coordinator.

#ifndef TRASS_SERVE_COORDINATOR_H_
#define TRASS_SERVE_COORDINATOR_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/measure.h"
#include "core/metrics.h"
#include "core/trajectory.h"
#include "core/trass_store.h"  // core::QueryOptions
#include "geo/mbr.h"
#include "kv/env.h"
#include "serve/circuit_breaker.h"
#include "serve/hint_journal.h"
#include "serve/partitioner.h"
#include "serve/shard_transport.h"
#include "serve/tenant_quota.h"
#include "util/query_context.h"
#include "util/retry_policy.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace trass {
namespace serve {

struct CoordinatorOptions {
  /// XZ* max resolution used for ingest routing; MUST match the shard
  /// stores' TrassOptions::max_resolution.
  int max_resolution = 16;

  /// Fan-out worker pool size (attempts in flight across all queries).
  size_t pool_threads = 8;

  /// Copies kept per trajectory across *distinct shards* (clamped to
  /// the shard count). 1 = seed behavior: no replication, a lost shard
  /// loses its key range. With R >= 2 the tier survives any single
  /// shard loss: reads fail over across the replica group and writes
  /// ack at `write_quorum`.
  int replication_factor = 1;

  /// Healthy replicas that must commit before PutBatch acks a
  /// trajectory (clamped to [1, replication_factor]). Replicas beyond
  /// the quorum that miss the write are hinted (if the journal is
  /// configured) and healed by replay or ScrubShards.
  int write_quorum = 1;

  /// Per-shard budget for one write attempt; <= 0 leaves writes
  /// undeadlined. Carried in ShardRequest::deadline_ms so transports
  /// (and injected faults) bound their blocking.
  double write_deadline_ms = 0.0;

  /// Hinted handoff. Empty dir disables the journal (replica misses
  /// then surface only as WriteReport::under_replicated, healed by
  /// ScrubShards). hint_env null uses kv::Env::Default().
  std::string hint_journal_dir;
  kv::Env* hint_env = nullptr;
  bool hint_sync = true;
  /// > 0: a background thread replays pending hints at this cadence
  /// (delivery still gated by each shard's breaker). 0 = manual
  /// ReplayHints only.
  double hint_replay_interval_ms = 0.0;

  /// Hedging. A shard quiet past max(hedge_min_delay_ms, its p95 over
  /// the last hedge_latency_window successful attempts) gets one
  /// hedged duplicate. Off: stragglers ride out their deadline budget.
  bool enable_hedging = true;
  double hedge_min_delay_ms = 10.0;
  size_t hedge_latency_window = 128;

  /// Per-shard retry schedule (see util/retry_policy). A retry whose
  /// backoff overshoots the remaining deadline fails fast instead.
  int max_shard_retries = 2;
  uint64_t retry_base_backoff_ms = 2;
  uint64_t retry_max_backoff_ms = 100;
  double retry_jitter = 0.2;

  /// Circuit breaker per shard.
  int breaker_failure_threshold = 3;
  double breaker_cooldown_ms = 500.0;

  /// Fraction of the remaining deadline withheld from shard budgets
  /// for coordinator-side merging, clamped to at least
  /// min_shard_budget_ms for the shard.
  double merge_reserve_fraction = 0.05;
  double min_shard_budget_ms = 1.0;

  /// Per-tenant router quota (see serve/tenant_quota.h); <= 0 disables.
  double tenant_tokens_per_sec = 0.0;
  double tenant_burst = 0.0;
};

/// Coordinator-level per-query controls: the store's QueryOptions plus
/// the tenant the query bills against.
struct CoordinatorQueryOptions {
  core::QueryOptions query;
  std::string tenant = "default";
};

/// Per-shard outcome of one PutBatch — the attribution a sequential
/// fail-fast write path could never give.
struct ShardWriteOutcome {
  size_t shard = 0;
  uint64_t rows = 0;          // rows routed to this shard
  Status status;              // commit outcome (OK = durable on shard)
  bool breaker_open = false;  // rejected fast, transport never tried
  bool hinted = false;        // rows journaled for later replay
};

/// Quorum-write rollup. `acked` trajectories reached write_quorum
/// durable copies; `under_replicated` counts acked trajectories with
/// at least one missing replica (hinted or awaiting scrub); `failed`
/// trajectories missed quorum and the batch returned their error.
struct WriteReport {
  std::vector<ShardWriteOutcome> shards;  // only shards the batch touched
  uint64_t acked = 0;
  uint64_t failed = 0;
  uint64_t under_replicated = 0;
  uint64_t hinted_rows = 0;
};

/// ReplayHints rollup.
struct HintReplayReport {
  uint64_t replayed = 0;             // hint records delivered + retired
  uint64_t replayed_rows = 0;
  uint64_t skipped_breaker_open = 0;  // shards skipped: breaker still open
  uint64_t failed = 0;                // delivery attempts that failed
};

/// ScrubShards rollup (the shard-topology ScrubReport).
struct ShardScrubReport {
  uint64_t shards_unreachable = 0;  // no fingerprint: fault/breaker-open
  uint64_t groups_checked = 0;      // replica groups with >= 2 reachable
  uint64_t groups_divergent = 0;
  uint64_t rows_repaired = 0;       // rows copied onto lagging replicas
};

/// Point-in-time per-shard observability snapshot.
struct ShardStats {
  std::string endpoint;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t breaker_trips = 0;
  uint64_t breaker_rejected = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedge_wins = 0;
  uint64_t attempts = 0;
  uint64_t failures = 0;
  double p95_latency_ms = 0.0;
};

class ShardCoordinator {
 public:
  ShardCoordinator(const CoordinatorOptions& options,
                   std::vector<std::shared_ptr<ShardTransport>> shards);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  size_t num_shards() const { return transports_.size(); }

  // ---- ingest (replicated quorum writes) ----

  Status Put(const core::Trajectory& trajectory,
             WriteReport* report = nullptr);
  /// Routes each trajectory to its R replica shards and writes every
  /// touched shard in parallel (no hedging — writes lean on idempotent
  /// re-puts for replay, not duplication in flight). A trajectory acks
  /// once write_quorum replicas committed; rows for shards that missed
  /// (fault or open breaker) are hinted when the journal is
  /// configured. Returns OK iff every trajectory acked; otherwise the
  /// first under-quorum shard's error, with per-shard outcomes in
  /// *report either way.
  Status PutBatch(const std::vector<core::Trajectory>& trajectories,
                  WriteReport* report = nullptr);

  /// Re-delivers pending hints, shard by shard (oldest first), gated
  /// by each shard's breaker: an open breaker skips the shard, a
  /// half-open one rides the probe. Delivered hints are retired from
  /// the journal. Safe to call concurrently with ingest and queries.
  Status ReplayHints(HintReplayReport* report = nullptr);

  /// Anti-entropy over the shard topology: fingerprints every
  /// reachable shard per primary partition, and for each divergent
  /// replica group re-builds lagging members from the union of their
  /// peers (narrow kExport + idempotent kPut). Complements ReplayHints
  /// — it heals misses that were never hinted (journal disabled, lost
  /// coordinator, quorum-acked-but-under-replicated writes).
  Status ScrubShards(ShardScrubReport* report = nullptr);

  // ---- queries (scatter-gather) ----

  Status ThresholdSearch(const std::vector<geo::Point>& query, double eps,
                         core::Measure measure,
                         std::vector<core::SearchResult>* results,
                         core::QueryMetrics* metrics = nullptr,
                         const CoordinatorQueryOptions& options = {});

  Status TopKSearch(const std::vector<geo::Point>& query, int k,
                    core::Measure measure,
                    std::vector<core::SearchResult>* results,
                    core::QueryMetrics* metrics = nullptr,
                    const CoordinatorQueryOptions& options = {});

  Status RangeQuery(const geo::Mbr& window, std::vector<uint64_t>* ids,
                    core::QueryMetrics* metrics = nullptr,
                    const CoordinatorQueryOptions& options = {});

  /// Distributed similarity self-join: exports every shard's
  /// trajectories (deduped across replicas) and probes each against
  /// the whole tier (the exact algorithm TrassStore::SimilarityJoin
  /// runs against itself), so the sorted pair list matches the
  /// single-store answer.
  Status SimilarityJoin(double eps, core::Measure measure,
                        std::vector<std::pair<uint64_t, uint64_t>>* pairs,
                        core::QueryMetrics* metrics = nullptr,
                        const CoordinatorQueryOptions& options = {});

  // ---- observability / test hooks ----

  std::vector<ShardStats> Stats() const;
  CircuitBreaker* breaker(size_t shard) { return breakers_[shard].get(); }
  const Partitioner& partitioner() const { return partitioner_; }
  TenantQuota* quota() { return &quota_; }
  const CoordinatorOptions& options() const { return options_; }
  /// Null when hint_journal_dir is empty or the journal failed to
  /// open (see hint_journal_status()).
  HintJournal* hint_journal() { return journal_.get(); }
  Status hint_journal_status() const { return journal_status_; }

 private:
  struct QueryState;  // per-fan-out shared state (coordinator.cc)

  /// Tracks recent successful-attempt latencies for one shard; the
  /// p95 feeds the hedge delay.
  class LatencyTracker {
   public:
    explicit LatencyTracker(size_t window) : window_(window ? window : 1) {}
    void Record(double ms);
    double Percentile(double p) const;

   private:
    mutable std::mutex mu_;
    size_t window_;
    std::vector<double> ring_;
    size_t next_ = 0;
  };

  /// Per-shard counters and latency history (breaker and transport live
  /// in breakers_/transports_, indexed identically).
  struct PerShard {
    std::unique_ptr<LatencyTracker> latency;
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> hedges_sent{0};
    std::atomic<uint64_t> hedge_wins{0};
  };

  /// One scatter-gather wave over every shard: breaker gating, primary
  /// launch, hedge/retry scheduling, first-response-wins merge slots.
  /// Returns once every slot is terminal — or, with replication, as
  /// soon as every primary partition is covered by a complete replica
  /// answer (remaining stragglers are cancelled and the absorbed
  /// losses counted as shard_failovers). Populates `state_out` for the
  /// caller to merge.
  Status FanOut(const ShardRequest& base,
                const CoordinatorQueryOptions& options,
                const QueryContext* control,
                std::shared_ptr<QueryState>* state_out,
                core::QueryMetrics* m);

  /// Launches one attempt (primary, retry, or hedge) for `shard`.
  /// `is_probe` marks the attempt holding the breaker's half-open
  /// probe slot (the primary launched after Admit() == kProbe); its
  /// completion must settle the slot even when cancelled. Caller
  /// holds the state mutex.
  void LaunchAttempt(const std::shared_ptr<QueryState>& state, size_t shard,
                     bool is_hedge, const QueryContext* control,
                     bool is_probe = false);

  /// Attempt completion handler (runs on pool threads).
  void OnAttemptComplete(const std::shared_ptr<QueryState>& state,
                         size_t shard, bool is_hedge, bool is_probe,
                         uint64_t epoch, double elapsed_ms, Status status,
                         ShardResponse&& response);

  /// Background hint replayer body (hint_replay_interval_ms > 0).
  void ReplayLoop();

  double ShardBudgetMs(const QueryContext* control) const;
  double HedgeDelayMs(size_t shard) const;

  CoordinatorOptions options_;
  std::vector<std::shared_ptr<ShardTransport>> transports_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<PerShard>> per_shard_;
  TenantQuota quota_;
  RetryPolicy retry_policy_;

  std::unique_ptr<HintJournal> journal_;
  Status journal_status_;

  // Background replayer (joined in the destructor before any member
  // dies, so declaration order does not matter for it).
  mutable std::mutex replay_mu_;
  std::condition_variable replay_cv_;
  bool stop_replayer_ = false;  // guarded by replay_mu_
  std::thread replayer_;

  // Declared last: destroyed first, joining in-flight attempt tasks
  // while the transports and trackers they reference are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_COORDINATOR_H_
