// ShardCoordinator: the fault-tolerant scatter-gather serving tier.
//
// N TrassStore shards sit behind ShardTransports (in-process, socket,
// or fault-injected); the coordinator partitions ingest across them
// (serve/partitioner.h) and fans threshold / top-k / within / join
// queries out, merging partial results into answers that are
// byte-identical to a single store over the union dataset when every
// shard answers. The headline is the fault behavior:
//
//   * Deadline budgeting — each shard attempt gets a budget carved
//     from the caller's remaining deadline (minus a merge reserve), so
//     a shard self-terminates rather than relying on abandonment.
//   * Hedged requests — a shard quiet past its p95-tracked latency
//     (floored at hedge_min_delay_ms) gets one duplicate request;
//     first response wins, the loser is cancelled. Safe because shard
//     queries are idempotent and each shard's slot merges exactly once.
//   * Retries — failed attempts reuse util/retry_policy's capped
//     exponential schedule; a backoff that would overshoot the
//     remaining deadline fails fast with the last error.
//   * Circuit breakers — consecutive shard failures open a per-shard
//     breaker (closed -> open -> half-open probe, mirroring replica
//     demotion/reinstatement) so dead shards cost one check, not a
//     deadline budget, per query.
//   * Verified-partial merges — with allow_partial, missing shards
//     degrade the answer to a verified subset, flagged via
//     QueryMetrics::{partial, shards_skipped}; without it, the first
//     unabsorbable fault fails the query with the shard attributed.
//   * Per-tenant token buckets — over-quota tenants shed as one fast
//     Status::Busy at the router, composing with each shard's
//     AdmissionController underneath.
//
// Top-k merges maintain a shared monotonically tightening k-th-distance
// bound: follow-up waves (retries and hedges launched after the first
// k results merged) carry the current bound, which the shard serves as
// a threshold search — strictly more pruning, same answer.
//
// Thread-safe: queries may run concurrently; hedges/retries of one
// query share its internal state under one mutex. Transports and the
// stores behind them must outlive the coordinator.

#ifndef TRASS_SERVE_COORDINATOR_H_
#define TRASS_SERVE_COORDINATOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/measure.h"
#include "core/metrics.h"
#include "core/trajectory.h"
#include "core/trass_store.h"  // core::QueryOptions
#include "geo/mbr.h"
#include "serve/circuit_breaker.h"
#include "serve/partitioner.h"
#include "serve/shard_transport.h"
#include "serve/tenant_quota.h"
#include "util/query_context.h"
#include "util/retry_policy.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace trass {
namespace serve {

struct CoordinatorOptions {
  /// XZ* max resolution used for ingest routing; MUST match the shard
  /// stores' TrassOptions::max_resolution.
  int max_resolution = 16;

  /// Fan-out worker pool size (attempts in flight across all queries).
  size_t pool_threads = 8;

  /// Hedging. A shard quiet past max(hedge_min_delay_ms, its p95 over
  /// the last hedge_latency_window successful attempts) gets one
  /// hedged duplicate. Off: stragglers ride out their deadline budget.
  bool enable_hedging = true;
  double hedge_min_delay_ms = 10.0;
  size_t hedge_latency_window = 128;

  /// Per-shard retry schedule (see util/retry_policy). A retry whose
  /// backoff overshoots the remaining deadline fails fast instead.
  int max_shard_retries = 2;
  uint64_t retry_base_backoff_ms = 2;
  uint64_t retry_max_backoff_ms = 100;
  double retry_jitter = 0.2;

  /// Circuit breaker per shard.
  int breaker_failure_threshold = 3;
  double breaker_cooldown_ms = 500.0;

  /// Fraction of the remaining deadline withheld from shard budgets
  /// for coordinator-side merging, clamped to at least
  /// min_shard_budget_ms for the shard.
  double merge_reserve_fraction = 0.05;
  double min_shard_budget_ms = 1.0;

  /// Per-tenant router quota (see serve/tenant_quota.h); <= 0 disables.
  double tenant_tokens_per_sec = 0.0;
  double tenant_burst = 0.0;
};

/// Coordinator-level per-query controls: the store's QueryOptions plus
/// the tenant the query bills against.
struct CoordinatorQueryOptions {
  core::QueryOptions query;
  std::string tenant = "default";
};

/// Point-in-time per-shard observability snapshot.
struct ShardStats {
  std::string endpoint;
  CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
  uint64_t breaker_trips = 0;
  uint64_t breaker_rejected = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedge_wins = 0;
  uint64_t attempts = 0;
  uint64_t failures = 0;
  double p95_latency_ms = 0.0;
};

class ShardCoordinator {
 public:
  ShardCoordinator(const CoordinatorOptions& options,
                   std::vector<std::shared_ptr<ShardTransport>> shards);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  size_t num_shards() const { return transports_.size(); }

  // ---- ingest (partitioned, synchronous) ----

  Status Put(const core::Trajectory& trajectory);
  /// Routes the batch through the partitioner and applies one kPut per
  /// owning shard (each shard's group-commit machinery takes over from
  /// there). Fails with the first shard error; no hedging on writes
  /// (duplicated ingest is not idempotent the way queries are).
  Status PutBatch(const std::vector<core::Trajectory>& trajectories);

  // ---- queries (scatter-gather) ----

  Status ThresholdSearch(const std::vector<geo::Point>& query, double eps,
                         core::Measure measure,
                         std::vector<core::SearchResult>* results,
                         core::QueryMetrics* metrics = nullptr,
                         const CoordinatorQueryOptions& options = {});

  Status TopKSearch(const std::vector<geo::Point>& query, int k,
                    core::Measure measure,
                    std::vector<core::SearchResult>* results,
                    core::QueryMetrics* metrics = nullptr,
                    const CoordinatorQueryOptions& options = {});

  Status RangeQuery(const geo::Mbr& window, std::vector<uint64_t>* ids,
                    core::QueryMetrics* metrics = nullptr,
                    const CoordinatorQueryOptions& options = {});

  /// Distributed similarity self-join: exports every shard's
  /// trajectories and probes each against the whole tier (the exact
  /// algorithm TrassStore::SimilarityJoin runs against itself), so the
  /// sorted pair list matches the single-store answer.
  Status SimilarityJoin(double eps, core::Measure measure,
                        std::vector<std::pair<uint64_t, uint64_t>>* pairs,
                        core::QueryMetrics* metrics = nullptr,
                        const CoordinatorQueryOptions& options = {});

  // ---- observability / test hooks ----

  std::vector<ShardStats> Stats() const;
  CircuitBreaker* breaker(size_t shard) { return breakers_[shard].get(); }
  const Partitioner& partitioner() const { return partitioner_; }
  TenantQuota* quota() { return &quota_; }
  const CoordinatorOptions& options() const { return options_; }

 private:
  struct QueryState;  // per-fan-out shared state (coordinator.cc)

  /// Tracks recent successful-attempt latencies for one shard; the
  /// p95 feeds the hedge delay.
  class LatencyTracker {
   public:
    explicit LatencyTracker(size_t window) : window_(window ? window : 1) {}
    void Record(double ms);
    double Percentile(double p) const;

   private:
    mutable std::mutex mu_;
    size_t window_;
    std::vector<double> ring_;
    size_t next_ = 0;
  };

  /// Per-shard counters and latency history (breaker and transport live
  /// in breakers_/transports_, indexed identically).
  struct PerShard {
    std::unique_ptr<LatencyTracker> latency;
    std::atomic<uint64_t> attempts{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> hedges_sent{0};
    std::atomic<uint64_t> hedge_wins{0};
  };

  /// One scatter-gather wave over every shard: breaker gating, primary
  /// launch, hedge/retry scheduling, first-response-wins merge slots.
  /// On return every slot is Done, Failed, or Skipped (post-deadline
  /// stragglers are cancelled and counted skipped). Populates
  /// `state_out` for the caller to merge.
  Status FanOut(const ShardRequest& base,
                const CoordinatorQueryOptions& options,
                const QueryContext* control,
                std::shared_ptr<QueryState>* state_out,
                core::QueryMetrics* m);

  /// Launches one attempt (primary, retry, or hedge) for `shard`.
  /// `is_probe` marks the attempt holding the breaker's half-open
  /// probe slot (the primary launched after Admit() == kProbe); its
  /// completion must settle the slot even when cancelled. Caller
  /// holds the state mutex.
  void LaunchAttempt(const std::shared_ptr<QueryState>& state, size_t shard,
                     bool is_hedge, const QueryContext* control,
                     bool is_probe = false);

  /// Attempt completion handler (runs on pool threads).
  void OnAttemptComplete(const std::shared_ptr<QueryState>& state,
                         size_t shard, bool is_hedge, bool is_probe,
                         uint64_t epoch, double elapsed_ms, Status status,
                         ShardResponse&& response);

  double ShardBudgetMs(const QueryContext* control) const;
  double HedgeDelayMs(size_t shard) const;

  CoordinatorOptions options_;
  std::vector<std::shared_ptr<ShardTransport>> transports_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  std::vector<std::unique_ptr<PerShard>> per_shard_;
  TenantQuota quota_;
  RetryPolicy retry_policy_;

  // Declared last: destroyed first, joining in-flight attempt tasks
  // while the transports and trackers they reference are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_COORDINATOR_H_
