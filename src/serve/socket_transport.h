// SocketShardTransport: ShardTransport over a local (AF_UNIX) stream
// socket to a ShardServer — the multi-process-on-one-host harness. Each
// Execute opens its own connection (unix connects are cheap), writes
// one framed request, and polls for the framed response so the
// attempt's cancel flag and budget stay enforceable even while the
// remote end is wedged: a blocking read would make a dead shard
// un-cancellable, which is exactly the failure mode the coordinator
// exists to absorb.

#ifndef TRASS_SERVE_SOCKET_TRANSPORT_H_
#define TRASS_SERVE_SOCKET_TRANSPORT_H_

#include <string>

#include "serve/shard_transport.h"

namespace trass {
namespace serve {

class SocketShardTransport : public ShardTransport {
 public:
  struct Options {
    /// Cancel-flag poll granularity while waiting on the socket.
    int poll_interval_ms = 5;
    /// Hard cap on one request's total socket wait when the request
    /// carries no deadline (a deadline-bearing request waits
    /// deadline_ms + slack instead).
    double io_timeout_ms = 30000.0;
    /// Extra wait past the request's own deadline before the transport
    /// gives up on the response (covers serialization + scheduling).
    double deadline_slack_ms = 250.0;
  };

  explicit SocketShardTransport(std::string socket_path)
      : SocketShardTransport(std::move(socket_path), Options()) {}
  SocketShardTransport(std::string socket_path, const Options& options);

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override;

  std::string Describe() const override { return "unix:" + socket_path_; }

 private:
  std::string socket_path_;
  Options options_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_SOCKET_TRANSPORT_H_
