#include "serve/tenant_quota.h"

#include <algorithm>

namespace trass {
namespace serve {

TenantQuota::TenantQuota(const Options& options) : options_(options) {
  burst_ = options_.burst > 0.0
               ? options_.burst
               : std::max(1.0, options_.tokens_per_sec);
}

double TenantQuota::Refill(Bucket* bucket) const {
  const Clock::time_point now = Clock::now();
  if (bucket->last_refill.time_since_epoch().count() == 0) {
    // First sighting: a fresh tenant starts with a full bucket.
    bucket->tokens = burst_;
  } else {
    const double elapsed_s =
        std::chrono::duration<double>(now - bucket->last_refill).count();
    bucket->tokens = std::min(
        burst_, bucket->tokens + elapsed_s * options_.tokens_per_sec);
  }
  bucket->last_refill = now;
  return bucket->tokens;
}

Status TenantQuota::Acquire(const std::string& tenant) {
  if (!enabled()) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[tenant];
  if (Refill(&bucket) < 1.0) {
    ++counters_.shed;
    return Status::Busy("tenant quota exceeded: " + tenant);
  }
  bucket.tokens -= 1.0;
  ++counters_.admitted;
  return Status::OK();
}

double TenantQuota::TokensAvailable(const std::string& tenant) const {
  if (!enabled()) return burst_;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[tenant];
  return Refill(&bucket);
}

TenantQuota::Counters TenantQuota::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace serve
}  // namespace trass
