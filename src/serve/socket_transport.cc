#include "serve/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/wire.h"
#include "util/coding.h"

namespace trass {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

bool Expired(Clock::time_point giveup) { return Clock::now() >= giveup; }

bool CancelSet(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

/// Writes all of `data`, polling for writability so a stalled peer
/// cannot hold the attempt past its budget.
Status WriteAll(int fd, const std::string& data,
                const std::atomic<bool>* cancel, Clock::time_point giveup,
                int poll_interval_ms) {
  size_t sent = 0;
  while (sent < data.size()) {
    if (CancelSet(cancel)) return Status::Cancelled("attempt cancelled");
    if (Expired(giveup)) return Status::TimedOut("shard request write timeout");
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) continue;
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes with the same cancel/deadline polling.
Status ReadExact(int fd, size_t len, std::string* out,
                 const std::atomic<bool>* cancel, Clock::time_point giveup,
                 int poll_interval_ms) {
  out->clear();
  out->reserve(len);
  char buf[4096];
  while (out->size() < len) {
    if (CancelSet(cancel)) return Status::Cancelled("attempt cancelled");
    if (Expired(giveup)) {
      return Status::TimedOut("shard response timed out");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (ready == 0) continue;
    const size_t want = std::min(sizeof(buf), len - out->size());
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    if (n == 0) {
      return Status::IoError("shard connection closed mid-response");
    }
    out->append(buf, static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

SocketShardTransport::SocketShardTransport(std::string socket_path,
                                           const Options& options)
    : socket_path_(std::move(socket_path)), options_(options) {}

Status SocketShardTransport::Execute(const ShardRequest& request,
                                     const std::atomic<bool>* cancel,
                                     ShardResponse* response) {
  *response = ShardResponse();
  if (CancelSet(cancel)) return Status::Cancelled("attempt cancelled");

  const double wait_ms = request.deadline_ms > 0.0
                             ? request.deadline_ms + options_.deadline_slack_ms
                             : options_.io_timeout_ms;
  const Clock::time_point giveup =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(wait_ms));

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("socket");
  FdCloser closer{fd};

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return Errno("connect " + socket_path_);
    }
    // Non-blocking connect: wait for completion under the same budget.
    while (true) {
      if (CancelSet(cancel)) return Status::Cancelled("attempt cancelled");
      if (Expired(giveup)) return Status::TimedOut("shard connect timeout");
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, options_.poll_interval_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno("poll");
      }
      if (ready == 0) continue;
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        return Errno("getsockopt");
      }
      if (err != 0) {
        errno = err;
        return Errno("connect " + socket_path_);
      }
      break;
    }
  }

  std::string payload, frame;
  EncodeShardRequest(request, &payload);
  FrameMessage(payload, &frame);
  Status s = WriteAll(fd, frame, cancel, giveup, options_.poll_interval_ms);
  if (!s.ok()) return s;

  std::string header;
  s = ReadExact(fd, 4, &header, cancel, giveup, options_.poll_interval_ms);
  if (!s.ok()) return s;
  const uint32_t payload_len = DecodeBigEndian32(header.data());
  if (payload_len > kMaxWireFrameBytes) {
    return Status::Corruption("wire: oversized response frame");
  }
  std::string body;
  s = ReadExact(fd, payload_len, &body, cancel, giveup,
                options_.poll_interval_ms);
  if (!s.ok()) return s;

  Status exec_status;
  s = DecodeShardResponse(Slice(body), response, &exec_status);
  if (!s.ok()) return s;
  return exec_status;
}

}  // namespace serve
}  // namespace trass
