// ShardServer: serves one TrassStore over a local (AF_UNIX) stream
// socket — the other half of the multi-process harness behind
// SocketShardTransport. One accept thread plus one thread per
// connection; each connection handles framed requests sequentially
// through the same ExecuteOnStore dispatch the in-process transport
// uses, so wire and direct shards are semantically identical.
//
// Shard-side protection is the request's own deadline (threaded into
// QueryOptions by ExecuteOnStore) plus the store's AdmissionController;
// the server itself never queues more than the kernel's accept backlog.

#ifndef TRASS_SERVE_SHARD_SERVER_H_
#define TRASS_SERVE_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trass_store.h"
#include "util/status.h"

namespace trass {
namespace serve {

class ShardServer {
 public:
  /// `store` is borrowed and must outlive the server.
  ShardServer(core::TrassStore* store, std::string socket_path);
  ~ShardServer();  // calls Stop()

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds the socket (unlinking any stale file) and starts accepting.
  Status Start();

  /// Stops accepting, shuts active connections, joins every thread.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  core::TrassStore* store_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  std::mutex mu_;  // guards conn_threads_ and conn_fds_
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_SHARD_SERVER_H_
