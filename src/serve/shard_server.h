// ShardServer: serves one TrassStore over a local (AF_UNIX) stream
// socket — the other half of the multi-process harness behind
// SocketShardTransport. One accept thread plus one thread per
// connection; each connection handles framed requests sequentially
// through the same ExecuteOnStore dispatch the in-process transport
// uses, so wire and direct shards are semantically identical.
//
// Shard-side protection is the request's own deadline (threaded into
// QueryOptions by ExecuteOnStore) plus the store's AdmissionController;
// the server itself never queues more than the kernel's accept backlog.

#ifndef TRASS_SERVE_SHARD_SERVER_H_
#define TRASS_SERVE_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/trass_store.h"
#include "util/status.h"

namespace trass {
namespace serve {

class ShardServer {
 public:
  /// `store` is borrowed and must outlive the server.
  ShardServer(core::TrassStore* store, std::string socket_path);
  ~ShardServer();  // calls Stop()

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds the socket (unlinking any stale file) and starts accepting.
  Status Start();

  /// Stops accepting, shuts active connections, joins every thread.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Connection threads currently tracked (live plus awaiting reap).
  /// Stays O(open connections), not O(connections ever served): the
  /// accept loop joins finished threads each tick. Test hook.
  size_t tracked_connection_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return conn_threads_.size() + finished_threads_.size();
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Joins connection threads that have already finished serving.
  /// Called from the accept loop each tick so a long-lived server
  /// reclaims one thread handle + stack per closed connection instead
  /// of accumulating them until Stop().
  void ReapFinishedConnections();

  core::TrassStore* store_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
  mutable std::mutex mu_;  // guards conn_threads_, finished_threads_, conn_fds_
  std::unordered_map<int, std::thread> conn_threads_;  // live, keyed by fd
  std::vector<std::thread> finished_threads_;          // awaiting join
  std::vector<int> conn_fds_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_SHARD_SERVER_H_
