// Partitioner: data placement for the scatter-gather tier. The XZ* key
// space is hash-partitioned across N shards: a trajectory routes by the
// hash of its encoded XZ* index value, so every trajectory of one index
// space co-locates (narrow workloads stay cache-warm on few shards)
// while the hash spreads the space's skew — the same trade the paper's
// `shards` row-key component makes inside one store, lifted to the
// shard topology. Queries still fan out to every shard: global pruning
// runs shard-side against each shard's own value directory, and a
// shard holding nothing in the query's ranges answers from metadata
// without touching its LSM.
//
// Replication is ring placement: replica r of a trajectory whose
// primary is shard p lives on shard (p + r) mod N, so the R copies sit
// on R distinct shards and losing any single shard leaves every
// primary's group with at least one survivor (for R >= 2). The group
// membership is what the coordinator's read failover and anti-entropy
// pass reason about.
//
// Routing is deterministic: the same trajectory always lands on the
// same shards for a fixed (max_resolution, num_shards, replication),
// which is what the merge-equivalence tests rely on.

#ifndef TRASS_SERVE_PARTITIONER_H_
#define TRASS_SERVE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "core/trajectory.h"
#include "index/xzstar.h"

namespace trass {
namespace serve {

class Partitioner {
 public:
  Partitioner(size_t num_shards, int max_resolution, size_t replication = 1)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        replication_(replication == 0 ? 1 : replication),
        xz_(max_resolution) {
    if (replication_ > num_shards_) replication_ = num_shards_;
  }

  size_t num_shards() const { return num_shards_; }
  /// Effective copies per trajectory (requested replication clamped to
  /// the shard count — R distinct shards must exist to hold R copies).
  size_t num_replicas() const { return replication_; }

  /// Primary shard owning `trajectory` (requires at least one point).
  size_t ShardOf(const core::Trajectory& trajectory) const {
    return ShardOfValue(xz_.Encode(xz_.Index(trajectory.points)));
  }

  /// Primary shard owning XZ* index value `value`.
  size_t ShardOfValue(int64_t value) const {
    // FNV-1a over the 8 value bytes: cheap, stable, and mixes the
    // depth-first-order locality of adjacent values away so one busy
    // subtree does not pile onto one shard.
    uint64_t h = 1469598103934665603ull;
    uint64_t v = static_cast<uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h % num_shards_);
  }

  /// All R distinct shards holding a copy of `trajectory`, primary first.
  std::vector<size_t> ReplicasOf(const core::Trajectory& trajectory) const {
    return ReplicaGroup(ShardOf(trajectory));
  }

  /// The ring group of shards holding copies of data whose primary is
  /// `primary`: {primary, primary+1, ...} mod N, R members.
  std::vector<size_t> ReplicaGroup(size_t primary) const {
    std::vector<size_t> group;
    group.reserve(replication_);
    for (size_t r = 0; r < replication_; ++r) {
      group.push_back((primary + r) % num_shards_);
    }
    return group;
  }

 private:
  size_t num_shards_;
  size_t replication_;
  index::XzStar xz_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_PARTITIONER_H_
