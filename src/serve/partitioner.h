// Partitioner: data placement for the scatter-gather tier. The XZ* key
// space is hash-partitioned across N shards: a trajectory routes by the
// hash of its encoded XZ* index value, so every trajectory of one index
// space co-locates (narrow workloads stay cache-warm on few shards)
// while the hash spreads the space's skew — the same trade the paper's
// `shards` row-key component makes inside one store, lifted to the
// shard topology. Queries still fan out to every shard: global pruning
// runs shard-side against each shard's own value directory, and a
// shard holding nothing in the query's ranges answers from metadata
// without touching its LSM.
//
// Routing is deterministic: the same trajectory always lands on the
// same shard for a fixed (max_resolution, num_shards), which is what
// the merge-equivalence tests rely on.

#ifndef TRASS_SERVE_PARTITIONER_H_
#define TRASS_SERVE_PARTITIONER_H_

#include <cstdint>

#include "core/trajectory.h"
#include "index/xzstar.h"

namespace trass {
namespace serve {

class Partitioner {
 public:
  Partitioner(size_t num_shards, int max_resolution)
      : num_shards_(num_shards == 0 ? 1 : num_shards), xz_(max_resolution) {}

  size_t num_shards() const { return num_shards_; }

  /// Shard owning `trajectory` (requires at least one point).
  size_t ShardOf(const core::Trajectory& trajectory) const {
    return ShardOfValue(xz_.Encode(xz_.Index(trajectory.points)));
  }

  /// Shard owning XZ* index value `value`.
  size_t ShardOfValue(int64_t value) const {
    // FNV-1a over the 8 value bytes: cheap, stable, and mixes the
    // depth-first-order locality of adjacent values away so one busy
    // subtree does not pile onto one shard.
    uint64_t h = 1469598103934665603ull;
    uint64_t v = static_cast<uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h % num_shards_);
  }

 private:
  size_t num_shards_;
  index::XzStar xz_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_PARTITIONER_H_
