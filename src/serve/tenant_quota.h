// TenantQuota: per-tenant token buckets at the coordinator, the router
// half of the two-level overload design. The shard half is each
// TrassStore's AdmissionController; this gate runs *before* fan-out so
// an over-quota tenant is shed with one fast Status::Busy at the router
// instead of occupying N shard admission queues (or, worse, queueing
// into a wedged shard and burning its retry/hedge budget).
//
// Buckets refill continuously at tokens_per_sec up to `burst`; one
// query costs one token. Unknown tenants get a fresh full bucket on
// first use. Thread-safe.

#ifndef TRASS_SERVE_TENANT_QUOTA_H_
#define TRASS_SERVE_TENANT_QUOTA_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace trass {
namespace serve {

class TenantQuota {
 public:
  struct Options {
    /// Sustained queries/second per tenant; <= 0 disables quotas
    /// entirely (every Acquire succeeds).
    double tokens_per_sec = 0.0;
    /// Bucket capacity (burst allowance). <= 0 defaults to
    /// max(1, tokens_per_sec).
    double burst = 0.0;
  };

  struct Counters {
    uint64_t admitted = 0;
    uint64_t shed = 0;  // queries rejected with Busy
  };

  explicit TenantQuota(const Options& options);

  /// Charges one query against `tenant`'s bucket. OK, or Busy when the
  /// bucket is empty (the caller should surface the shed immediately —
  /// the admission-control convention).
  Status Acquire(const std::string& tenant);

  /// Tokens currently in `tenant`'s bucket (after refill); tenants not
  /// seen yet report the full burst.
  double TokensAvailable(const std::string& tenant) const;

  Counters counters() const;
  bool enabled() const { return options_.tokens_per_sec > 0.0; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last_refill{};
  };

  double Refill(Bucket* bucket) const;  // returns tokens after refill

  Options options_;
  double burst_ = 0.0;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, Bucket> buckets_;
  Counters counters_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_TENANT_QUOTA_H_
