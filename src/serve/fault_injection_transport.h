// FaultInjectionTransport: the chaos layer of the serving tier. Wraps
// any ShardTransport and perturbs requests the way a real network and a
// real wedged process would — the transport-level sibling of
// kv::FaultInjectionEnv, seeded the same way (TRASS_CHAOS_SEED drives
// the ci.sh chaos schedules).
//
// Fault kinds:
//   error      fail immediately with an injected IoError
//   drop       the request vanishes: block until the attempt's budget
//              (deadline + slack) elapses or the caller cancels, then
//              report TimedOut — exactly what a lost frame looks like
//   delay      sleep delay_ms (cancellable), then forward
//   duplicate  forward the request twice back-to-back, answering with
//              the first result — duplicated delivery must be harmless
//              because shard queries are idempotent
//   wedge      the shard is alive-but-stuck: block until cancelled
//              (ignores the request's own deadline, like a process
//              that stopped scheduling its event loop)
//
// Probabilistic faults draw from a seeded xorshift under a mutex, so a
// chaos schedule is reproducible from its seed. `SetWedged` is a level,
// not an event: every call while wedged blocks. Counters let tests
// assert the schedule actually fired.

#ifndef TRASS_SERVE_FAULT_INJECTION_TRANSPORT_H_
#define TRASS_SERVE_FAULT_INJECTION_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/shard_transport.h"

namespace trass {
namespace serve {

class FaultInjectionTransport : public ShardTransport {
 public:
  struct Options {
    double error_probability = 0.0;
    double drop_probability = 0.0;
    double delay_probability = 0.0;
    double duplicate_probability = 0.0;
    double delay_ms = 20.0;
    /// Upper bound on any injected block (drop without a request
    /// deadline, wedge without a cancel flag) so a misconfigured test
    /// can never hang forever.
    double max_block_ms = 30000.0;
    uint64_t seed = 0x5eed;
  };

  struct Counters {
    uint64_t forwarded = 0;   // requests that reached the inner transport
    uint64_t errors = 0;
    uint64_t drops = 0;
    uint64_t delays = 0;
    uint64_t duplicates = 0;
    uint64_t wedged_calls = 0;
    uint64_t faults() const {
      return errors + drops + delays + duplicates + wedged_calls;
    }
  };

  FaultInjectionTransport(std::shared_ptr<ShardTransport> inner,
                          const Options& options);

  /// Flips the wedge level. While true, every Execute blocks until its
  /// cancel flag fires (or max_block_ms), then fails with IoError — the
  /// caller's hedges, breaker, and deadline machinery must absorb it.
  void SetWedged(bool wedged) { wedged_.store(wedged); }
  bool wedged() const { return wedged_.load(); }

  /// Replaces the probabilistic schedule (chaos trials reconfigure
  /// between phases). The RNG state is NOT reset.
  void SetOptions(const Options& options);

  Counters counters() const;

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override;

  std::string Describe() const override {
    return "fault(" + inner_->Describe() + ")";
  }

  ShardTransport* inner() { return inner_.get(); }

 private:
  /// Uniform draw in [0, 1) from the seeded generator.
  double Draw();

  /// Sleeps up to `ms`, polling `cancel`; true if cancelled first.
  bool CancellableSleep(double ms, const std::atomic<bool>* cancel) const;

  std::shared_ptr<ShardTransport> inner_;
  mutable std::mutex mu_;  // guards options_, rng_state_, counters_
  Options options_;
  uint64_t rng_state_;
  Counters counters_;
  std::atomic<bool> wedged_{false};
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_FAULT_INJECTION_TRANSPORT_H_
