// DirectShardTransport: the in-process ShardTransport — a TrassStore
// called through the same request/response structs the wire transport
// serializes, so the coordinator's production path and the socket
// harness exercise identical shard-side semantics.
//
// ExecuteOnStore is the single op-dispatch both this transport and
// ShardServer share: deadline/cancel/partial controls map onto
// QueryOptions, kTopK with a finite bound downgrades to a threshold
// search at that bound (the follow-up-wave contract in
// shard_transport.h), and kExport streams decoded rows.

#ifndef TRASS_SERVE_DIRECT_TRANSPORT_H_
#define TRASS_SERVE_DIRECT_TRANSPORT_H_

#include <string>

#include "core/trass_store.h"
#include "serve/shard_transport.h"

namespace trass {
namespace serve {

/// Runs one ShardRequest against `store`. Shared by DirectShardTransport
/// and ShardServer. Thread-safe (TrassStore queries are).
Status ExecuteOnStore(core::TrassStore* store, const ShardRequest& request,
                      const std::atomic<bool>* cancel,
                      ShardResponse* response);

class DirectShardTransport : public ShardTransport {
 public:
  /// `store` is borrowed and must outlive the transport (and any
  /// coordinator built on it).
  explicit DirectShardTransport(core::TrassStore* store) : store_(store) {}

  Status Execute(const ShardRequest& request, const std::atomic<bool>* cancel,
                 ShardResponse* response) override {
    return ExecuteOnStore(store_, request, cancel, response);
  }

  std::string Describe() const override { return "direct"; }

  core::TrassStore* store() { return store_; }

 private:
  core::TrassStore* store_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_DIRECT_TRANSPORT_H_
