#include "serve/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/stopwatch.h"

namespace trass {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration MillisDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

std::string ShardLabel(size_t shard, const ShardTransport& transport) {
  return "shard " + std::to_string(shard) + " (" + transport.Describe() + ")";
}

/// Mirrors TrassStore::ResolveStop so coordinator queries report stops
/// the same way single-store queries do.
Status ResolveStop(const Status& stop, bool allow_partial,
                   core::QueryMetrics* m) {
  if (stop.IsTimedOut()) {
    m->deadline_expired = true;
  } else if (stop.IsCancelled()) {
    m->cancelled = true;
  } else if (stop.IsBusy()) {
    m->budget_exhausted = true;
  }
  if (!allow_partial) return stop;
  m->partial = true;
  return Status::OK();
}

/// Folds one shard's QueryMetrics into the coordinator-level rollup:
/// counters and CPU times sum, degradation flags OR (a partial shard
/// answer makes the merged answer partial — never an unreported gap).
void FoldShardMetrics(const core::QueryMetrics& from, core::QueryMetrics* to) {
  to->pruning_ms += from.pruning_ms;
  to->scan_ms += from.scan_ms;
  to->refine_ms += from.refine_ms;
  to->scan_ranges += from.scan_ranges;
  to->index_values += from.index_values;
  to->retrieved += from.retrieved;
  to->candidates += from.candidates;
  to->refined += from.refined;
  to->lb_rejected += from.lb_rejected;
  to->refine_dp_runs += from.refine_dp_runs;
  to->refine_threads = std::max(to->refine_threads, from.refine_threads);
  to->refine_decode_ms += from.refine_decode_ms;
  to->refine_lb_ms += from.refine_lb_ms;
  to->refine_dp_ms += from.refine_dp_ms;
  to->partial = to->partial || from.partial;
  to->skipped_regions += from.skipped_regions;
  to->scan_retries += from.scan_retries;
  to->replica_failovers += from.replica_failovers;
  to->deadline_expired = to->deadline_expired || from.deadline_expired;
  to->cancelled = to->cancelled || from.cancelled;
  to->budget_exhausted = to->budget_exhausted || from.budget_exhausted;
  to->admission_wait_ms += from.admission_wait_ms;
  to->ingest_watermark = std::max(to->ingest_watermark, from.ingest_watermark);
  to->read_only_replicas += from.read_only_replicas;
  to->filter_elements_pruned += from.filter_elements_pruned;
  to->filter_mbr_pruned += from.filter_mbr_pruned;
  to->fingerprint_skips += from.fingerprint_skips;
  // Per-shard RAM gauges sum to the fleet's filter footprint.
  to->filter_memory_bytes += from.filter_memory_bytes;
  to->block_cache_hits += from.block_cache_hits;
  to->block_cache_misses += from.block_cache_misses;
  to->block_cache_fills += from.block_cache_fills;
  to->readahead_reads += from.readahead_reads;
  to->readahead_bytes_read += from.readahead_bytes_read;
}

void ArmControl(const core::QueryOptions& options, QueryContext* control) {
  control->SetDeadlineAfterMillis(options.deadline_ms);
  if (options.cancel != nullptr) control->SetCancelFlag(options.cancel);
  // The candidate budget is enforced shard-side: it rides in
  // ShardRequest::max_candidates, not in this (routing-only) context.
}

/// In-place first-occurrence dedup by trajectory id. With replication a
/// trajectory answers from up to R shards; the copies are byte-identical
/// (same rows, same deterministic measure), so keeping the first sorted
/// occurrence reproduces the single-store answer exactly.
void DedupResultsById(std::vector<core::SearchResult>* results) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(results->size());
  auto end = std::remove_if(results->begin(), results->end(),
                            [&seen](const core::SearchResult& r) {
                              return !seen.insert(r.id).second;
                            });
  results->erase(end, results->end());
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyTracker

void ShardCoordinator::LatencyTracker::Record(double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < window_) {
    ring_.push_back(ms);
  } else {
    ring_[next_] = ms;
  }
  next_ = (next_ + 1) % window_;
}

double ShardCoordinator::LatencyTracker::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  std::vector<double> sorted = ring_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

// ---------------------------------------------------------------------------
// QueryState

struct ShardCoordinator::QueryState {
  std::mutex mu;
  std::condition_variable cv;

  ShardRequest base;                    // per-attempt request template
  const QueryContext* control = nullptr;  // valid only until `done`

  bool done = false;      // FanOut resolved; late attempts are stragglers
  size_t unresolved = 0;  // slots not yet Done/Failed/Skipped
  uint64_t next_epoch = 0;
  uint64_t hedges_sent = 0;
  uint64_t hedge_wins = 0;

  size_t num_replicas = 1;  // ring-placement group width (partitioner)

  struct Slot {
    enum class S { kUnlaunched, kInFlight, kDone, kFailed, kSkipped };
    S state = S::kUnlaunched;
    bool launched = false;   // got at least one attempt (contacted)
    bool breaker_skipped = false;  // gated out by an open breaker
    ShardResponse response;  // the winning attempt's answer (kDone)
    Status last_error;       // most recent shard-attributed failure
    int retries_used = 0;
    bool hedged = false;       // at most one hedge per shard per query
    int active_attempts = 0;   // attempts currently on the wire
    bool retry_scheduled = false;
    Clock::time_point retry_due{};
    Clock::time_point launch_time{};  // primary launch (hedge timing)
    // Kill switches of in-flight attempts, keyed by attempt epoch; set
    // when a sibling wins or the fan-out tears down.
    std::vector<std::pair<uint64_t, std::shared_ptr<std::atomic<bool>>>> live;
  };
  std::vector<Slot> slots;

  // ---- replica-group coverage (caller holds mu) ----
  //
  // Primary partition g lives on the ring group {g, g+1, ...} mod N, R
  // members wide. The merge over any set of slots is complete iff every
  // group has at least one member with a complete (non-partial) answer
  // — that member holds every trajectory whose primary is g.

  bool SlotCovers(const Slot& slot) const {
    return slot.state == Slot::S::kDone && !slot.response.metrics.partial;
  }
  /// Terminal with no answer: can never cover its groups.
  bool SlotDoomed(const Slot& slot) const {
    return slot.state == Slot::S::kFailed || slot.state == Slot::S::kSkipped;
  }
  bool GroupCovered(size_t group) const {
    for (size_t r = 0; r < num_replicas; ++r) {
      if (SlotCovers(slots[(group + r) % slots.size()])) return true;
    }
    return false;
  }
  /// Every member terminal-without-answer: the group's key range is
  /// unreachable this query and strict mode must fail now.
  bool GroupDoomed(size_t group) const {
    for (size_t r = 0; r < num_replicas; ++r) {
      const Slot& slot = slots[(group + r) % slots.size()];
      if (!SlotDoomed(slot)) return false;
    }
    return true;
  }
  bool AllGroupsCovered() const {
    for (size_t g = 0; g < slots.size(); ++g) {
      if (!GroupCovered(g)) return false;
    }
    return true;
  }
  /// Current merged k-th distance across resolved shards — the monotone
  /// upper bound follow-up waves carry (infinity until k results have
  /// merged). Dedups by id first: with replication a trajectory can
  /// answer from two replicas, and counting it twice would tighten the
  /// bound past the true k-th distance and prune real answers. Caller
  /// holds mu.
  double CurrentTopKBound() const {
    if (base.op != ShardOp::kTopK || base.k <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    std::unordered_map<uint64_t, double> best;
    for (const Slot& slot : slots) {
      if (slot.state != Slot::S::kDone) continue;
      for (const core::SearchResult& r : slot.response.results) {
        auto [it, inserted] = best.emplace(r.id, r.distance);
        if (!inserted && r.distance < it->second) it->second = r.distance;
      }
    }
    const size_t k = static_cast<size_t>(base.k);
    if (best.size() < k) return std::numeric_limits<double>::infinity();
    std::vector<double> distances;
    distances.reserve(best.size());
    for (const auto& [id, distance] : best) distances.push_back(distance);
    std::nth_element(distances.begin(), distances.begin() + (k - 1),
                     distances.end());
    return distances[k - 1];
  }
};

// ---------------------------------------------------------------------------
// Construction

ShardCoordinator::ShardCoordinator(
    const CoordinatorOptions& options,
    std::vector<std::shared_ptr<ShardTransport>> shards)
    : options_(options),
      transports_(std::move(shards)),
      partitioner_(transports_.size(), options.max_resolution,
                   options.replication_factor < 1
                       ? 1
                       : static_cast<size_t>(options.replication_factor)),
      quota_(TenantQuota::Options{options.tenant_tokens_per_sec,
                                  options.tenant_burst}),
      retry_policy_(RetryPolicy::Options{
          options.max_shard_retries, options.retry_base_backoff_ms,
          options.retry_max_backoff_ms, options.retry_jitter}) {
  for (size_t i = 0; i < transports_.size(); ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(
        CircuitBreaker::Options{options_.breaker_failure_threshold,
                                options_.breaker_cooldown_ms}));
    auto per_shard = std::make_unique<PerShard>();
    per_shard->latency =
        std::make_unique<LatencyTracker>(options_.hedge_latency_window);
    per_shard_.push_back(std::move(per_shard));
  }
  if (!options_.hint_journal_dir.empty()) {
    HintJournal::Options journal_options;
    journal_options.env = options_.hint_env;
    journal_options.dir = options_.hint_journal_dir;
    journal_options.sync = options_.hint_sync;
    journal_status_ = HintJournal::Open(journal_options, &journal_);
    // A journal that failed to open degrades hints to
    // WriteReport::under_replicated (scrub-healed); the error stays
    // visible via hint_journal_status().
  }
  pool_ = std::make_unique<ThreadPool>(
      options_.pool_threads == 0 ? 1 : options_.pool_threads);
  if (journal_ != nullptr && options_.hint_replay_interval_ms > 0) {
    replayer_ = std::thread([this] { ReplayLoop(); });
  }
}

// The replayer joins first (it uses transports and the journal), then
// members destroy in reverse order: the pool next, joining in-flight
// attempt tasks while the transports they use are still alive.
ShardCoordinator::~ShardCoordinator() {
  if (replayer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(replay_mu_);
      stop_replayer_ = true;
    }
    replay_cv_.notify_all();
    replayer_.join();
  }
}

void ShardCoordinator::ReplayLoop() {
  std::unique_lock<std::mutex> lock(replay_mu_);
  for (;;) {
    replay_cv_.wait_for(lock,
                        MillisDuration(options_.hint_replay_interval_ms),
                        [&] { return stop_replayer_; });
    if (stop_replayer_) return;
    lock.unlock();
    if (journal_->pending_records() > 0) (void)ReplayHints();
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Fan-out machinery

double ShardCoordinator::ShardBudgetMs(const QueryContext* control) const {
  const double remaining = control->RemainingMillis();
  if (!std::isfinite(remaining)) return 0.0;  // undeadlined
  return std::max(options_.min_shard_budget_ms,
                  remaining * (1.0 - options_.merge_reserve_fraction));
}

double ShardCoordinator::HedgeDelayMs(size_t shard) const {
  return std::max(options_.hedge_min_delay_ms,
                  per_shard_[shard]->latency->Percentile(95.0));
}

void ShardCoordinator::LaunchAttempt(const std::shared_ptr<QueryState>& state,
                                     size_t shard, bool is_hedge,
                                     const QueryContext* control,
                                     bool is_probe) {
  QueryState::Slot& slot = state->slots[shard];
  const uint64_t epoch = ++state->next_epoch;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  slot.live.emplace_back(epoch, cancel);
  slot.active_attempts++;
  if (slot.state == QueryState::Slot::S::kUnlaunched) {
    slot.state = QueryState::Slot::S::kInFlight;
  }
  slot.launched = true;
  if (is_hedge) {
    slot.hedged = true;
    state->hedges_sent++;
    per_shard_[shard]->hedges_sent.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot.launch_time = Clock::now();
  }
  per_shard_[shard]->attempts.fetch_add(1, std::memory_order_relaxed);

  ShardRequest request = state->base;
  request.deadline_ms = ShardBudgetMs(control);
  if (request.op == ShardOp::kTopK) {
    request.bound = std::min(request.bound, state->CurrentTopKBound());
  }

  std::shared_ptr<ShardTransport> transport = transports_[shard];
  pool_->Submit([this, state, shard, is_hedge, is_probe, epoch, cancel,
                 transport = std::move(transport),
                 request = std::move(request)]() mutable {
    Stopwatch watch;
    ShardResponse response;
    Status status = transport->Execute(request, cancel.get(), &response);
    OnAttemptComplete(state, shard, is_hedge, is_probe, epoch,
                      watch.ElapsedMillis(), std::move(status),
                      std::move(response));
  });
}

void ShardCoordinator::OnAttemptComplete(
    const std::shared_ptr<QueryState>& state, size_t shard, bool is_hedge,
    bool is_probe, uint64_t epoch, double elapsed_ms, Status status,
    ShardResponse&& response) {
  // Shard-health bookkeeping first (the breaker has its own lock).
  // Cancelled is the coordinator reclaiming its own attempt — a hedge
  // loser or a post-merge straggler — never a shard-attributed fault.
  if (status.ok()) {
    breakers_[shard]->RecordSuccess();
    per_shard_[shard]->latency->Record(elapsed_ms);
  } else if (status.IsCancelled()) {
    // A cancelled attempt settles nothing about shard health, but a
    // cancelled half-open probe must still return its claimed slot —
    // otherwise the breaker waits forever on an outcome that is never
    // coming and the shard stays excluded past recovery.
    if (is_probe) breakers_[shard]->ReleaseProbe();
  } else {
    per_shard_[shard]->failures.fetch_add(1, std::memory_order_relaxed);
    breakers_[shard]->RecordFailure(status);
  }

  std::lock_guard<std::mutex> lock(state->mu);
  QueryState::Slot& slot = state->slots[shard];
  slot.active_attempts--;
  slot.live.erase(
      std::remove_if(slot.live.begin(), slot.live.end(),
                     [epoch](const auto& entry) { return entry.first == epoch; }),
      slot.live.end());

  if (status.ok()) {
    if (slot.state == QueryState::Slot::S::kInFlight) {
      // First response wins; the slot merges exactly once.
      slot.state = QueryState::Slot::S::kDone;
      slot.response = std::move(response);
      slot.retry_scheduled = false;
      state->unresolved--;
      if (is_hedge) {
        state->hedge_wins++;
        per_shard_[shard]->hedge_wins.fetch_add(1, std::memory_order_relaxed);
      }
      for (auto& [live_epoch, live_cancel] : slot.live) {
        live_cancel->store(true);  // losers return promptly, answers dropped
      }
    }
    // Else: a straggler finishing after the merge — result dropped (its
    // breaker RecordSuccess above still counts as a liveness signal).
  } else if (!state->done &&
             slot.state == QueryState::Slot::S::kInFlight) {
    if (!status.IsCancelled()) slot.last_error = status;
    if (slot.active_attempts == 0) {
      // Last in-flight attempt for this shard failed; retry or give up.
      // Query stops (TimedOut/Busy) from the *shard's* budget are
      // retryable here — the coordinator may still have budget — while
      // Cancelled/InvalidArgument/NotSupported never are.
      const bool retryable =
          !(status.IsCancelled() || status.IsInvalidArgument() ||
            status.IsNotSupported());
      bool scheduled = false;
      if (retryable && slot.retries_used < options_.max_shard_retries) {
        const double backoff_ms =
            static_cast<double>(retry_policy_.BackoffMs(slot.retries_used + 1));
        // Fail fast when the backoff would overshoot the remaining
        // deadline: sleeping a budget's tail buys one doomed attempt.
        if (backoff_ms <= state->control->RemainingMillis()) {
          slot.retries_used++;
          slot.retry_scheduled = true;
          slot.retry_due = Clock::now() + MillisDuration(backoff_ms);
          scheduled = true;
        }
      }
      if (!scheduled) {
        slot.state = QueryState::Slot::S::kFailed;
        if (slot.last_error.ok()) slot.last_error = status;
        state->unresolved--;
      }
    }
  }
  state->cv.notify_all();
}

Status ShardCoordinator::FanOut(const ShardRequest& base,
                                const CoordinatorQueryOptions& options,
                                const QueryContext* control,
                                std::shared_ptr<QueryState>* state_out,
                                core::QueryMetrics* m) {
  (void)options;
  auto state = std::make_shared<QueryState>();
  state->base = base;
  state->control = control;
  state->num_replicas = partitioner_.num_replicas();
  const size_t n = transports_.size();
  state->slots.resize(n);
  state->unresolved = n;
  *state_out = state;

  // Strict-mode doom check: scans for a replica group whose coverage is
  // unrecoverable (all members terminal without an answer) and returns
  // the first member's shard-attributed error. OK when no group is
  // doomed — or when the only doomed slots carry no error (deadline
  // teardown cancellations; the caller's control stop explains those).
  // Caller holds state->mu.
  auto attribute_doom = [&]() -> Status {
    for (size_t g = 0; g < n; ++g) {
      if (state->GroupCovered(g) || !state->GroupDoomed(g)) continue;
      for (size_t r = 0; r < state->num_replicas; ++r) {
        const size_t member = (g + r) % n;
        const QueryState::Slot& slot = state->slots[member];
        if (slot.last_error.ok()) continue;
        std::string label = ShardLabel(member, *transports_[member]);
        if (slot.breaker_skipped) label += " circuit breaker open";
        return slot.last_error.WithContext(label);
      }
    }
    return Status::OK();
  };

  Status fail;
  std::unique_lock<std::mutex> lock(state->mu);

  // Breaker gating + primary launches. A breaker-open shard is skipped,
  // not fatal: with replication its groups may still be covered by the
  // other members, and strict mode only fails once a whole group is
  // doomed (checked after gating and in the wait loop).
  for (size_t i = 0; i < n; ++i) {
    const CircuitBreaker::Decision decision = breakers_[i]->Admit();
    if (decision == CircuitBreaker::Decision::kReject) {
      m->breaker_open++;
      QueryState::Slot& slot = state->slots[i];
      slot.state = QueryState::Slot::S::kSkipped;
      slot.breaker_skipped = true;
      const Status last = breakers_[i]->last_error();
      slot.last_error = last.ok() ? Status::Busy("circuit breaker open") : last;
      state->unresolved--;
    } else {
      // kProceed or kProbe: success/failure outcomes settle the probe
      // via Record*; a cancelled probe releases its slot explicitly in
      // OnAttemptComplete, so the claim is always returned.
      LaunchAttempt(state, i, /*is_hedge=*/false, control,
                    decision == CircuitBreaker::Decision::kProbe);
    }
  }
  if (!base.allow_partial) fail = attribute_doom();

  // Wait loop: launch due retries and hedges, wake on attempt
  // completions, poll the caller's control every tick. Exits early once
  // every replica group is covered — remaining stragglers can only
  // duplicate answers already merged, so they are cancelled and the
  // absorbed losses counted as failovers below.
  while (fail.ok() && state->unresolved > 0 && !state->AllGroupsCovered()) {
    if (control->ShouldStop()) break;
    const Clock::time_point now = Clock::now();
    Clock::time_point next_wake = now + MillisDuration(10.0);
    for (size_t i = 0; i < n; ++i) {
      QueryState::Slot& slot = state->slots[i];
      if (slot.retry_scheduled) {
        if (now >= slot.retry_due) {
          slot.retry_scheduled = false;
          LaunchAttempt(state, i, /*is_hedge=*/false, control);
        } else {
          next_wake = std::min(next_wake, slot.retry_due);
        }
      } else if (options_.enable_hedging &&
                 slot.state == QueryState::Slot::S::kInFlight &&
                 slot.active_attempts == 1 && !slot.hedged) {
        const Clock::time_point hedge_at =
            slot.launch_time + MillisDuration(HedgeDelayMs(i));
        if (now >= hedge_at) {
          LaunchAttempt(state, i, /*is_hedge=*/true, control);
        } else {
          next_wake = std::min(next_wake, hedge_at);
        }
      }
    }
    if (!base.allow_partial) fail = attribute_doom();
    if (!fail.ok() || state->unresolved == 0 || state->AllGroupsCovered()) {
      break;
    }
    state->cv.wait_until(lock, next_wake);
  }

  // Teardown: freeze the merge set. Every still-open slot becomes
  // terminal so a straggler's late answer can never mutate results the
  // caller is already reading, and every live attempt is cancelled so
  // transports release their threads promptly.
  state->done = true;
  uint64_t contacted = 0;
  uint64_t skipped = 0;
  for (QueryState::Slot& slot : state->slots) {
    for (auto& [live_epoch, live_cancel] : slot.live) {
      live_cancel->store(true);
    }
    if (slot.state == QueryState::Slot::S::kInFlight ||
        slot.state == QueryState::Slot::S::kUnlaunched) {
      slot.state = QueryState::Slot::S::kSkipped;
      slot.retry_scheduled = false;
    }
    if (slot.launched) contacted++;
    if (slot.state != QueryState::Slot::S::kDone) skipped++;
  }
  m->shards_contacted += contacted;
  m->hedges_sent += state->hedges_sent;
  m->hedge_wins += state->hedge_wins;

  if (!fail.ok()) return fail;
  if (skipped == 0) return Status::OK();

  // Replica failover: every primary partition is covered by a complete
  // answer, so the merge is exact despite the missing shards — losses
  // were absorbed, not degraded. Strict queries succeed and the answer
  // is NOT partial; the absorbed count stays observable.
  if (state->AllGroupsCovered()) {
    m->shard_failovers += skipped;
    return Status::OK();
  }

  if (!base.allow_partial) {
    const Status doom = attribute_doom();
    if (!doom.ok()) return doom;
    const Status stop = control->Check();
    if (!stop.ok()) return ResolveStop(stop, /*allow_partial=*/false, m);
    return Status::IoError("shards unresolved");  // defensive; unreachable
  }

  // Verified-partial degradation: the merge is a sound subset and the
  // gap is reported, never silent.
  m->partial = true;
  m->shards_skipped += skipped;
  const Status stop = control->Check();
  if (!stop.ok()) ResolveStop(stop, /*allow_partial=*/true, m);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Ingest

Status ShardCoordinator::Put(const core::Trajectory& trajectory,
                             WriteReport* report) {
  return PutBatch({trajectory}, report);
}

Status ShardCoordinator::PutBatch(
    const std::vector<core::Trajectory>& trajectories, WriteReport* report) {
  if (report != nullptr) *report = WriteReport();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  for (const core::Trajectory& t : trajectories) {
    if (t.points.empty()) {
      return Status::InvalidArgument("empty trajectory " + std::to_string(t.id));
    }
  }
  if (trajectories.empty()) return Status::OK();

  // Route every trajectory to its full replica group; remember the
  // placement so quorum is counted per trajectory afterwards.
  const size_t n = transports_.size();
  std::vector<std::vector<size_t>> rows_of_shard(n);    // trajectory indices
  std::vector<std::vector<size_t>> shards_of_row(trajectories.size());
  for (size_t ti = 0; ti < trajectories.size(); ++ti) {
    shards_of_row[ti] = partitioner_.ReplicasOf(trajectories[ti]);
    for (size_t shard : shards_of_row[ti]) {
      rows_of_shard[shard].push_back(ti);
    }
  }

  // Write every touched shard in parallel. Breaker-open shards are
  // rejected fast — no transport attempt, no retry budget burned — and
  // fall through to the hint journal with the others.
  struct ShardWrite {
    bool touched = false;
    bool contacted = false;
    bool breaker_open = false;
    bool hinted = false;
    Status status;
  };
  std::vector<ShardWrite> writes(n);
  std::vector<std::future<void>> inflight;
  for (size_t i = 0; i < n; ++i) {
    if (rows_of_shard[i].empty()) continue;
    ShardWrite& write = writes[i];
    write.touched = true;
    const CircuitBreaker::Decision decision = breakers_[i]->Admit();
    if (decision == CircuitBreaker::Decision::kReject) {
      write.breaker_open = true;
      const Status last = breakers_[i]->last_error();
      write.status =
          last.ok() ? Status::Busy("circuit breaker open") : last;
      continue;
    }
    ShardRequest request;
    request.op = ShardOp::kPut;
    request.deadline_ms = options_.write_deadline_ms;
    request.trajectories.reserve(rows_of_shard[i].size());
    for (size_t ti : rows_of_shard[i]) {
      request.trajectories.push_back(trajectories[ti]);
    }
    write.contacted = true;
    inflight.push_back(pool_->Submit(
        [this, i, &write, request = std::move(request)]() mutable {
          per_shard_[i]->attempts.fetch_add(1, std::memory_order_relaxed);
          // No hedging: a write that races its own duplicate is only
          // safe because re-puts are idempotent, and we reserve that
          // property for hint replay, not routine ingest. The probe
          // claimed by Admit() (if any) is settled by the Record below.
          const Status s = retry_policy_.Run([&] {
            ShardResponse response;
            return transports_[i]->Execute(request, nullptr, &response);
          });
          if (s.ok()) {
            breakers_[i]->RecordSuccess();
          } else {
            per_shard_[i]->failures.fetch_add(1, std::memory_order_relaxed);
            breakers_[i]->RecordFailure(s);
          }
          write.status = s;
        }));
  }
  for (std::future<void>& f : inflight) f.get();

  // Hinted handoff: rows for every shard that missed the write are
  // journaled durably before the batch acks, so a replica lost to a
  // fault or an open breaker is healed by replay instead of staying
  // silently behind.
  uint64_t hinted_rows = 0;
  if (journal_ != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (!writes[i].touched || writes[i].status.ok()) continue;
      std::vector<core::Trajectory> rows;
      rows.reserve(rows_of_shard[i].size());
      for (size_t ti : rows_of_shard[i]) rows.push_back(trajectories[ti]);
      if (journal_->Append(i, rows).ok()) {
        writes[i].hinted = true;
        hinted_rows += rows.size();
      }
    }
  }

  // Per-trajectory quorum accounting.
  const size_t quorum = std::max<size_t>(
      1, std::min<size_t>(partitioner_.num_replicas(),
                          options_.write_quorum < 1
                              ? 1
                              : static_cast<size_t>(options_.write_quorum)));
  Status first_failure;
  uint64_t acked = 0;
  uint64_t failed = 0;
  uint64_t under_replicated = 0;
  for (size_t ti = 0; ti < trajectories.size(); ++ti) {
    size_t committed = 0;
    for (size_t shard : shards_of_row[ti]) {
      if (writes[shard].status.ok()) committed++;
    }
    if (committed >= quorum) {
      acked++;
      if (committed < shards_of_row[ti].size()) under_replicated++;
    } else {
      failed++;
      if (first_failure.ok()) {
        for (size_t shard : shards_of_row[ti]) {
          if (writes[shard].status.ok()) continue;
          first_failure = writes[shard].status.WithContext(
              ShardLabel(shard, *transports_[shard]));
          break;
        }
      }
    }
  }

  if (report != nullptr) {
    report->acked = acked;
    report->failed = failed;
    report->under_replicated = under_replicated;
    report->hinted_rows = hinted_rows;
    for (size_t i = 0; i < n; ++i) {
      if (!writes[i].touched) continue;
      ShardWriteOutcome outcome;
      outcome.shard = i;
      outcome.rows = rows_of_shard[i].size();
      outcome.status = writes[i].status;
      outcome.breaker_open = writes[i].breaker_open;
      outcome.hinted = writes[i].hinted;
      report->shards.push_back(std::move(outcome));
    }
  }
  return first_failure;
}

Status ShardCoordinator::ReplayHints(HintReplayReport* report) {
  if (report != nullptr) *report = HintReplayReport();
  if (journal_ == nullptr) {
    return journal_status_.ok() ? Status::OK() : journal_status_;
  }
  Status first_failure;
  for (size_t shard : journal_->ShardsWithHints()) {
    if (shard >= transports_.size()) continue;  // topology shrank: keep
    if (breakers_[shard]->Admit() == CircuitBreaker::Decision::kReject) {
      if (report != nullptr) report->skipped_breaker_open++;
      continue;
    }
    // A kProbe admit rides this delivery as the half-open probe: the
    // first Record below settles it, reinstating the shard on success.
    for (const PendingHint& hint : journal_->Pending(shard)) {
      ShardRequest request;
      request.op = ShardOp::kPut;
      request.deadline_ms = options_.write_deadline_ms;
      request.trajectories = hint.rows;
      ShardResponse response;
      per_shard_[shard]->attempts.fetch_add(1, std::memory_order_relaxed);
      const Status s = transports_[shard]->Execute(request, nullptr, &response);
      if (s.ok()) {
        breakers_[shard]->RecordSuccess();
        // Crash between delivery and this retirement re-delivers the
        // hint next replay — absorbed by idempotent re-puts.
        const Status retired = journal_->MarkApplied(hint.seq);
        if (!retired.ok() && first_failure.ok()) first_failure = retired;
        if (report != nullptr) {
          report->replayed++;
          report->replayed_rows += hint.rows.size();
        }
      } else {
        per_shard_[shard]->failures.fetch_add(1, std::memory_order_relaxed);
        breakers_[shard]->RecordFailure(s);
        if (report != nullptr) report->failed++;
        if (first_failure.ok()) {
          first_failure =
              s.WithContext(ShardLabel(shard, *transports_[shard]));
        }
        break;  // shard still down: keep its remaining hints for later
      }
    }
  }
  return first_failure;
}

// ---------------------------------------------------------------------------
// Anti-entropy

Status ShardCoordinator::ScrubShards(ShardScrubReport* report) {
  if (report != nullptr) *report = ShardScrubReport();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  const size_t n = transports_.size();
  if (partitioner_.num_replicas() < 2) return Status::OK();  // nothing to cross-check

  // Phase 1: fingerprint every reachable shard under the coordinator's
  // topology. Breaker-open or faulting shards sit this pass out; their
  // groups are compared among the survivors.
  std::vector<char> reachable(n, 0);
  std::vector<std::map<uint64_t, PartitionFingerprint>> fingerprints(n);
  Status first_failure;
  for (size_t i = 0; i < n; ++i) {
    if (breakers_[i]->Admit() == CircuitBreaker::Decision::kReject) {
      if (report != nullptr) report->shards_unreachable++;
      continue;
    }
    ShardRequest request;
    request.op = ShardOp::kFingerprint;
    request.num_shards = n;
    ShardResponse response;
    const Status s = transports_[i]->Execute(request, nullptr, &response);
    if (s.ok()) {
      breakers_[i]->RecordSuccess();
      reachable[i] = 1;
      for (const PartitionFingerprint& fp : response.fingerprints) {
        fingerprints[i][fp.primary] = fp;
      }
    } else {
      per_shard_[i]->failures.fetch_add(1, std::memory_order_relaxed);
      breakers_[i]->RecordFailure(s);
      if (report != nullptr) report->shards_unreachable++;
      if (first_failure.ok()) {
        first_failure = s.WithContext(ShardLabel(i, *transports_[i]));
      }
    }
  }

  // Phase 2: per primary partition, compare the replica group's
  // digests; on divergence export the partition from every reachable
  // member and copy each member the rows it is missing (idempotent
  // re-puts, so racing ingest is safe).
  for (size_t g = 0; g < n; ++g) {
    std::vector<size_t> members;
    for (size_t m : partitioner_.ReplicaGroup(g)) {
      if (reachable[m]) members.push_back(m);
    }
    if (members.size() < 2) continue;  // nobody to compare against
    if (report != nullptr) report->groups_checked++;
    bool divergent = false;
    // A member with no rows for the partition simply has no
    // fingerprint entry; (0 rows, crc of nothing) is its digest.
    PartitionFingerprint reference;
    bool have_reference = false;
    for (size_t m : members) {
      PartitionFingerprint fp;
      fp.primary = g;
      auto it = fingerprints[m].find(g);
      if (it != fingerprints[m].end()) fp = it->second;
      if (!have_reference) {
        reference = fp;
        have_reference = true;
      } else if (fp.rows != reference.rows || fp.crc != reference.crc) {
        divergent = true;
      }
    }
    if (!divergent) continue;
    if (report != nullptr) report->groups_divergent++;

    std::map<uint64_t, core::Trajectory> union_rows;
    std::vector<std::unordered_set<uint64_t>> have(members.size());
    std::vector<char> exported(members.size(), 0);
    for (size_t idx = 0; idx < members.size(); ++idx) {
      const size_t m = members[idx];
      ShardRequest request;
      request.op = ShardOp::kExport;
      request.num_shards = n;
      request.export_primary = static_cast<int64_t>(g);
      ShardResponse response;
      const Status s = transports_[m]->Execute(request, nullptr, &response);
      if (!s.ok()) {
        per_shard_[m]->failures.fetch_add(1, std::memory_order_relaxed);
        breakers_[m]->RecordFailure(s);
        if (first_failure.ok()) {
          first_failure = s.WithContext(ShardLabel(m, *transports_[m]));
        }
        continue;  // neither a source nor a repair target this pass
      }
      breakers_[m]->RecordSuccess();
      exported[idx] = 1;
      for (core::Trajectory& t : response.trajectories) {
        have[idx].insert(t.id);
        union_rows.emplace(t.id, std::move(t));
      }
    }
    for (size_t idx = 0; idx < members.size(); ++idx) {
      if (!exported[idx]) continue;
      const size_t m = members[idx];
      ShardRequest request;
      request.op = ShardOp::kPut;
      for (const auto& [id, t] : union_rows) {
        if (have[idx].count(id) == 0) request.trajectories.push_back(t);
      }
      if (request.trajectories.empty()) continue;
      ShardResponse response;
      const Status s = transports_[m]->Execute(request, nullptr, &response);
      if (s.ok()) {
        breakers_[m]->RecordSuccess();
        if (report != nullptr) {
          report->rows_repaired += request.trajectories.size();
        }
      } else {
        per_shard_[m]->failures.fetch_add(1, std::memory_order_relaxed);
        breakers_[m]->RecordFailure(s);
        if (first_failure.ok()) {
          first_failure = s.WithContext(ShardLabel(m, *transports_[m]));
        }
      }
    }
  }
  return first_failure;
}

// ---------------------------------------------------------------------------
// Queries

Status ShardCoordinator::ThresholdSearch(const std::vector<geo::Point>& query,
                                         double eps, core::Measure measure,
                                         std::vector<core::SearchResult>* results,
                                         core::QueryMetrics* metrics,
                                         const CoordinatorQueryOptions& options) {
  results->clear();
  core::QueryMetrics local_metrics;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = core::QueryMetrics();
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  Stopwatch total;
  if (Status admit = quota_.Acquire(options.tenant); !admit.ok()) return admit;
  QueryContext control;
  ArmControl(options.query, &control);

  ShardRequest base;
  base.op = ShardOp::kThreshold;
  base.query = query;
  base.eps = eps;
  base.measure = measure;
  base.max_candidates = options.query.max_candidates;
  base.allow_partial = options.query.allow_partial;

  std::shared_ptr<QueryState> state;
  const Status s = FanOut(base, options, &control, &state, m);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(state->mu);
    for (QueryState::Slot& slot : state->slots) {
      if (slot.state != QueryState::Slot::S::kDone) continue;
      FoldShardMetrics(slot.response.metrics, m);
      results->insert(results->end(), slot.response.results.begin(),
                      slot.response.results.end());
    }
    // Shards are disjoint by trajectory at R=1, so concat + the
    // SearchResult (distance, id) order reproduces the single-store
    // answer exactly; with replication a trajectory may answer from
    // several replicas, and the id-dedup keeps the copies out.
    std::sort(results->begin(), results->end());
    if (partitioner_.num_replicas() > 1) DedupResultsById(results);
    m->results = results->size();
  }
  m->total_ms = total.ElapsedMillis();
  return s;
}

Status ShardCoordinator::TopKSearch(const std::vector<geo::Point>& query, int k,
                                    core::Measure measure,
                                    std::vector<core::SearchResult>* results,
                                    core::QueryMetrics* metrics,
                                    const CoordinatorQueryOptions& options) {
  results->clear();
  core::QueryMetrics local_metrics;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = core::QueryMetrics();
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (k <= 0) return Status::OK();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  Stopwatch total;
  if (Status admit = quota_.Acquire(options.tenant); !admit.ok()) return admit;
  QueryContext control;
  ArmControl(options.query, &control);

  ShardRequest base;
  base.op = ShardOp::kTopK;
  base.query = query;
  base.k = k;
  base.measure = measure;
  base.max_candidates = options.query.max_candidates;
  base.allow_partial = options.query.allow_partial;

  std::shared_ptr<QueryState> state;
  const Status s = FanOut(base, options, &control, &state, m);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(state->mu);
    for (QueryState::Slot& slot : state->slots) {
      if (slot.state != QueryState::Slot::S::kDone) continue;
      FoldShardMetrics(slot.response.metrics, m);
      results->insert(results->end(), slot.response.results.begin(),
                      slot.response.results.end());
    }
    // Each shard's answer is a superset of its contribution to the
    // global top-k (a local top-k, or everything under the propagated
    // bound), so sort + dedup + truncate is the exact global answer —
    // the dedup keeps a replicated trajectory from occupying two of
    // the k slots.
    std::sort(results->begin(), results->end());
    if (partitioner_.num_replicas() > 1) DedupResultsById(results);
    if (results->size() > static_cast<size_t>(k)) {
      results->resize(static_cast<size_t>(k));
    }
    m->results = results->size();
  }
  m->total_ms = total.ElapsedMillis();
  return s;
}

Status ShardCoordinator::RangeQuery(const geo::Mbr& window,
                                    std::vector<uint64_t>* ids,
                                    core::QueryMetrics* metrics,
                                    const CoordinatorQueryOptions& options) {
  ids->clear();
  core::QueryMetrics local_metrics;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = core::QueryMetrics();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  Stopwatch total;
  if (Status admit = quota_.Acquire(options.tenant); !admit.ok()) return admit;
  QueryContext control;
  ArmControl(options.query, &control);

  ShardRequest base;
  base.op = ShardOp::kRange;
  base.window = window;
  base.max_candidates = options.query.max_candidates;
  base.allow_partial = options.query.allow_partial;

  std::shared_ptr<QueryState> state;
  const Status s = FanOut(base, options, &control, &state, m);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(state->mu);
    for (QueryState::Slot& slot : state->slots) {
      if (slot.state != QueryState::Slot::S::kDone) continue;
      FoldShardMetrics(slot.response.metrics, m);
      ids->insert(ids->end(), slot.response.ids.begin(),
                  slot.response.ids.end());
    }
    std::sort(ids->begin(), ids->end());
    ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
    m->results = ids->size();
  }
  m->total_ms = total.ElapsedMillis();
  return s;
}

Status ShardCoordinator::SimilarityJoin(
    double eps, core::Measure measure,
    std::vector<std::pair<uint64_t, uint64_t>>* pairs,
    core::QueryMetrics* metrics, const CoordinatorQueryOptions& options) {
  pairs->clear();
  core::QueryMetrics local_metrics;
  core::QueryMetrics* m = metrics != nullptr ? metrics : &local_metrics;
  *m = core::QueryMetrics();
  if (transports_.empty()) {
    return Status::InvalidArgument("coordinator has no shards");
  }
  Stopwatch total;
  // One quota token covers the whole join (the single-store join holds
  // one admission slot the same way); the probes below skip the quota.
  if (Status admit = quota_.Acquire(options.tenant); !admit.ok()) return admit;
  QueryContext control;
  ArmControl(options.query, &control);
  const bool allow_partial = options.query.allow_partial;

  // Phase 1: export every shard's stored trajectories.
  ShardRequest export_request;
  export_request.op = ShardOp::kExport;
  export_request.allow_partial = allow_partial;
  std::shared_ptr<QueryState> export_state;
  Status s = FanOut(export_request, options, &control, &export_state, m);
  if (!s.ok()) {
    m->total_ms = total.ElapsedMillis();
    return s;
  }
  std::vector<core::Trajectory> all;
  {
    std::lock_guard<std::mutex> lock(export_state->mu);
    std::unordered_set<uint64_t> seen;
    for (QueryState::Slot& slot : export_state->slots) {
      if (slot.state != QueryState::Slot::S::kDone) continue;
      FoldShardMetrics(slot.response.metrics, m);
      for (core::Trajectory& t : slot.response.trajectories) {
        // Replicated rows export from every live replica; probe each
        // trajectory once.
        if (seen.insert(t.id).second) all.push_back(std::move(t));
      }
      slot.response.trajectories.clear();
    }
  }
  // Probe order is irrelevant (pairs are sorted at the end) but a
  // deterministic order keeps runs reproducible.
  std::sort(all.begin(), all.end(),
            [](const core::Trajectory& a, const core::Trajectory& b) {
              return a.id < b.id;
            });

  // Phase 2: probe the whole tier with each trajectory — the exact
  // probe-per-row algorithm TrassStore::SimilarityJoin runs locally.
  Status stopped;
  for (const core::Trajectory& t : all) {
    if (Status stop = control.Check(); !stop.ok()) {
      stopped = stop;
      break;
    }
    ShardRequest probe;
    probe.op = ShardOp::kThreshold;
    probe.query = t.points;
    probe.eps = eps;
    probe.measure = measure;
    probe.max_candidates = options.query.max_candidates;
    probe.allow_partial = allow_partial;
    std::shared_ptr<QueryState> probe_state;
    s = FanOut(probe, options, &control, &probe_state, m);
    if (s.IsQueryStop()) {
      // Pairs from completed probes are exact; the stopped probe's
      // partial matches are discarded (they could miss pairs).
      stopped = s;
      break;
    }
    if (!s.ok()) {
      m->total_ms = total.ElapsedMillis();
      return s;
    }
    std::lock_guard<std::mutex> lock(probe_state->mu);
    for (QueryState::Slot& slot : probe_state->slots) {
      if (slot.state != QueryState::Slot::S::kDone) continue;
      FoldShardMetrics(slot.response.metrics, m);
      for (const core::SearchResult& match : slot.response.results) {
        if (match.id > t.id) pairs->emplace_back(t.id, match.id);
      }
    }
  }
  std::sort(pairs->begin(), pairs->end());
  // Replicated matches surface once per hosting shard; report each
  // unordered pair once, like the single-store join.
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
  m->results = pairs->size();
  m->total_ms = total.ElapsedMillis();
  if (!stopped.ok()) return ResolveStop(stopped, allow_partial, m);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Observability

std::vector<ShardStats> ShardCoordinator::Stats() const {
  std::vector<ShardStats> out;
  out.reserve(transports_.size());
  for (size_t i = 0; i < transports_.size(); ++i) {
    ShardStats stats;
    stats.endpoint = transports_[i]->Describe();
    stats.breaker_state = breakers_[i]->state();
    const CircuitBreaker::Counters counters = breakers_[i]->counters();
    stats.breaker_trips = counters.trips;
    stats.breaker_rejected = counters.rejected;
    stats.hedges_sent =
        per_shard_[i]->hedges_sent.load(std::memory_order_relaxed);
    stats.hedge_wins =
        per_shard_[i]->hedge_wins.load(std::memory_order_relaxed);
    stats.attempts = per_shard_[i]->attempts.load(std::memory_order_relaxed);
    stats.failures = per_shard_[i]->failures.load(std::memory_order_relaxed);
    stats.p95_latency_ms = per_shard_[i]->latency->Percentile(95.0);
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace serve
}  // namespace trass
