#include "serve/wire.h"

#include "util/coding.h"

namespace trass {
namespace serve {
namespace {

// v2 adds replication-era fields: request {num_shards, export_primary}
// and response fingerprints (anti-entropy). A v1 peer fails loudly with
// Corruption instead of misparsing, per the header contract.
constexpr uint8_t kWireVersion = 4;  // v4: cache/readahead metric fields

// Status codes on the wire. Keep in sync with the factories in
// util/status.h; unknown codes decode as IoError so a skewed peer
// degrades into a retryable transport fault, not silent corruption.
enum WireStatusCode : uint8_t {
  kWireOk = 0,
  kWireNotFound = 1,
  kWireCorruption = 2,
  kWireInvalidArgument = 3,
  kWireIoError = 4,
  kWireNotSupported = 5,
  kWireTimedOut = 6,
  kWireCancelled = 7,
  kWireBusy = 8,
  kWireNoSpace = 9,
};

uint8_t StatusToWire(const Status& s) {
  if (s.ok()) return kWireOk;
  if (s.IsNotFound()) return kWireNotFound;
  if (s.IsCorruption()) return kWireCorruption;
  if (s.IsInvalidArgument()) return kWireInvalidArgument;
  if (s.IsNotSupported()) return kWireNotSupported;
  if (s.IsTimedOut()) return kWireTimedOut;
  if (s.IsCancelled()) return kWireCancelled;
  if (s.IsBusy()) return kWireBusy;
  if (s.IsNoSpace()) return kWireNoSpace;
  return kWireIoError;
}

Status StatusFromWire(uint8_t code, std::string_view msg) {
  switch (code) {
    case kWireOk:
      return Status::OK();
    case kWireNotFound:
      return Status::NotFound(msg);
    case kWireCorruption:
      return Status::Corruption(msg);
    case kWireInvalidArgument:
      return Status::InvalidArgument(msg);
    case kWireNotSupported:
      return Status::NotSupported(msg);
    case kWireTimedOut:
      return Status::TimedOut(msg);
    case kWireCancelled:
      return Status::Cancelled(msg);
    case kWireBusy:
      return Status::Busy(msg);
    case kWireNoSpace:
      return Status::NoSpace(msg);
    default:
      return Status::IoError(msg);
  }
}

void PutStatus(const Status& s, std::string* dst) {
  dst->push_back(static_cast<char>(StatusToWire(s)));
  // ToString carries the "<Code>: " prefix; strip it so the message
  // round-trips without stacking prefixes on every hop.
  std::string text = s.ok() ? std::string() : s.ToString();
  const size_t colon = text.find(": ");
  if (colon != std::string::npos) text = text.substr(colon + 2);
  PutLengthPrefixedSlice(dst, Slice(text));
}

bool GetStatus(Slice* input, Status* out) {
  if (input->size() < 1) return false;
  const uint8_t code = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  Slice msg;
  if (!GetLengthPrefixedSlice(input, &msg)) return false;
  *out = StatusFromWire(code, std::string_view(msg.data(), msg.size()));
  return true;
}

void PutPoints(const std::vector<geo::Point>& points, std::string* dst) {
  PutVarint64(dst, points.size());
  for (const geo::Point& p : points) {
    PutDouble(dst, p.x);
    PutDouble(dst, p.y);
  }
}

// Decoded element counts are bounded by the bytes actually remaining
// in the payload divided by the minimum encoded element size, so a few
// corrupt bytes in an otherwise tiny frame can't claim a huge count
// and trigger a multi-GB reserve() before parsing fails.

bool GetPoints(Slice* input, std::vector<geo::Point>* points) {
  uint64_t n = 0;
  if (!GetVarint64(input, &n)) return false;
  if (n > input->size() / 16) return false;  // 16 bytes per point
  points->clear();
  points->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    geo::Point p;
    if (!GetDouble(input, &p.x) || !GetDouble(input, &p.y)) return false;
    points->push_back(p);
  }
  return true;
}

void PutTrajectories(const std::vector<core::Trajectory>& trajectories,
                     std::string* dst) {
  PutVarint64(dst, trajectories.size());
  for (const core::Trajectory& t : trajectories) {
    PutVarint64(dst, t.id);
    PutPoints(t.points, dst);
  }
}

bool GetTrajectories(Slice* input,
                     std::vector<core::Trajectory>* trajectories) {
  uint64_t n = 0;
  if (!GetVarint64(input, &n)) return false;
  // >= 2 bytes each: id varint + point-count varint.
  if (n > input->size() / 2) return false;
  trajectories->clear();
  trajectories->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    core::Trajectory t;
    if (!GetVarint64(input, &t.id)) return false;
    if (!GetPoints(input, &t.points)) return false;
    trajectories->push_back(std::move(t));
  }
  return true;
}

// The QueryMetrics fields the coordinator folds across shards. Encoded
// as a fixed field list behind the frame version.
void PutMetrics(const core::QueryMetrics& m, std::string* dst) {
  PutDouble(dst, m.pruning_ms);
  PutDouble(dst, m.scan_ms);
  PutDouble(dst, m.refine_ms);
  PutDouble(dst, m.total_ms);
  PutVarint64(dst, m.scan_ranges);
  PutVarint64(dst, m.index_values);
  PutVarint64(dst, m.retrieved);
  PutVarint64(dst, m.candidates);
  PutVarint64(dst, m.refined);
  PutVarint64(dst, m.results);
  PutVarint64(dst, m.lb_rejected);
  PutVarint64(dst, m.refine_dp_runs);
  PutVarint64(dst, m.skipped_regions);
  PutVarint64(dst, m.scan_retries);
  PutVarint64(dst, m.replica_failovers);
  PutVarint64(dst, m.ingest_watermark);
  PutVarint64(dst, m.read_only_replicas);
  PutVarint64(dst, m.filter_elements_pruned);
  PutVarint64(dst, m.filter_mbr_pruned);
  PutVarint64(dst, m.fingerprint_skips);
  PutVarint64(dst, m.filter_memory_bytes);
  PutVarint64(dst, m.block_cache_hits);
  PutVarint64(dst, m.block_cache_misses);
  PutVarint64(dst, m.block_cache_fills);
  PutVarint64(dst, m.readahead_reads);
  PutVarint64(dst, m.readahead_bytes_read);
  const uint8_t flags = static_cast<uint8_t>(
      (m.partial ? 1 : 0) | (m.deadline_expired ? 2 : 0) |
      (m.cancelled ? 4 : 0) | (m.budget_exhausted ? 8 : 0));
  dst->push_back(static_cast<char>(flags));
}

bool GetMetrics(Slice* input, core::QueryMetrics* m) {
  if (!GetDouble(input, &m->pruning_ms) || !GetDouble(input, &m->scan_ms) ||
      !GetDouble(input, &m->refine_ms) || !GetDouble(input, &m->total_ms)) {
    return false;
  }
  if (!GetVarint64(input, &m->scan_ranges) ||
      !GetVarint64(input, &m->index_values) ||
      !GetVarint64(input, &m->retrieved) ||
      !GetVarint64(input, &m->candidates) ||
      !GetVarint64(input, &m->refined) || !GetVarint64(input, &m->results) ||
      !GetVarint64(input, &m->lb_rejected) ||
      !GetVarint64(input, &m->refine_dp_runs) ||
      !GetVarint64(input, &m->skipped_regions) ||
      !GetVarint64(input, &m->scan_retries) ||
      !GetVarint64(input, &m->replica_failovers) ||
      !GetVarint64(input, &m->ingest_watermark) ||
      !GetVarint64(input, &m->read_only_replicas) ||
      !GetVarint64(input, &m->filter_elements_pruned) ||
      !GetVarint64(input, &m->filter_mbr_pruned) ||
      !GetVarint64(input, &m->fingerprint_skips) ||
      !GetVarint64(input, &m->filter_memory_bytes) ||
      !GetVarint64(input, &m->block_cache_hits) ||
      !GetVarint64(input, &m->block_cache_misses) ||
      !GetVarint64(input, &m->block_cache_fills) ||
      !GetVarint64(input, &m->readahead_reads) ||
      !GetVarint64(input, &m->readahead_bytes_read)) {
    return false;
  }
  if (input->size() < 1) return false;
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  m->partial = (flags & 1) != 0;
  m->deadline_expired = (flags & 2) != 0;
  m->cancelled = (flags & 4) != 0;
  m->budget_exhausted = (flags & 8) != 0;
  return true;
}

Status Malformed(const char* what) {
  return Status::Corruption(std::string("wire: malformed ") + what);
}

}  // namespace

void FrameMessage(const std::string& payload, std::string* out) {
  PutBigEndian32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

void EncodeShardRequest(const ShardRequest& request, std::string* payload) {
  payload->clear();
  payload->push_back(static_cast<char>(kWireVersion));
  payload->push_back(static_cast<char>(request.op));
  PutPoints(request.query, payload);
  PutDouble(payload, request.eps);
  PutVarint32(payload, static_cast<uint32_t>(request.k));
  payload->push_back(static_cast<char>(request.measure));
  PutDouble(payload, request.window.min_x());
  PutDouble(payload, request.window.min_y());
  PutDouble(payload, request.window.max_x());
  PutDouble(payload, request.window.max_y());
  PutDouble(payload, request.bound);
  PutDouble(payload, request.deadline_ms);
  PutVarint64(payload, request.max_candidates);
  payload->push_back(request.allow_partial ? 1 : 0);
  PutTrajectories(request.trajectories, payload);
  PutVarint64(payload, request.num_shards);
  // export_primary is -1 (no filter) or a shard index; bias by one so
  // the common -1 encodes as a single zero byte.
  PutVarint64(payload, static_cast<uint64_t>(request.export_primary + 1));
}

Status DecodeShardRequest(Slice payload, ShardRequest* request) {
  *request = ShardRequest();
  if (payload.size() < 2) return Malformed("request header");
  if (static_cast<uint8_t>(payload[0]) != kWireVersion) {
    return Status::Corruption("wire: unknown request version");
  }
  request->op = static_cast<ShardOp>(payload[1]);
  payload.remove_prefix(2);
  if (!GetPoints(&payload, &request->query)) return Malformed("query points");
  uint32_t k = 0;
  if (!GetDouble(&payload, &request->eps) || !GetVarint32(&payload, &k)) {
    return Malformed("eps/k");
  }
  request->k = static_cast<int>(k);
  if (payload.size() < 1) return Malformed("measure");
  request->measure = static_cast<core::Measure>(payload[0]);
  payload.remove_prefix(1);
  double min_x, min_y, max_x, max_y;
  if (!GetDouble(&payload, &min_x) || !GetDouble(&payload, &min_y) ||
      !GetDouble(&payload, &max_x) || !GetDouble(&payload, &max_y)) {
    return Malformed("window");
  }
  request->window = geo::Mbr(min_x, min_y, max_x, max_y);
  if (!GetDouble(&payload, &request->bound) ||
      !GetDouble(&payload, &request->deadline_ms) ||
      !GetVarint64(&payload, &request->max_candidates)) {
    return Malformed("budgets");
  }
  if (payload.size() < 1) return Malformed("allow_partial");
  request->allow_partial = payload[0] != 0;
  payload.remove_prefix(1);
  if (!GetTrajectories(&payload, &request->trajectories)) {
    return Malformed("trajectories");
  }
  uint64_t export_primary_biased = 0;
  if (!GetVarint64(&payload, &request->num_shards) ||
      !GetVarint64(&payload, &export_primary_biased)) {
    return Malformed("placement fields");
  }
  request->export_primary = static_cast<int64_t>(export_primary_biased) - 1;
  return Status::OK();
}

void EncodeShardResponse(const ShardResponse& response,
                         const Status& exec_status, std::string* payload) {
  payload->clear();
  payload->push_back(static_cast<char>(kWireVersion));
  PutStatus(exec_status, payload);
  PutVarint64(payload, response.results.size());
  for (const core::SearchResult& r : response.results) {
    PutVarint64(payload, r.id);
    PutDouble(payload, r.distance);
  }
  PutVarint64(payload, response.ids.size());
  for (uint64_t id : response.ids) PutVarint64(payload, id);
  PutTrajectories(response.trajectories, payload);
  PutMetrics(response.metrics, payload);
  PutVarint64(payload, response.fingerprints.size());
  for (const PartitionFingerprint& fp : response.fingerprints) {
    PutVarint64(payload, fp.primary);
    PutVarint64(payload, fp.rows);
    PutBigEndian32(payload, fp.crc);
  }
}

Status DecodeShardResponse(Slice payload, ShardResponse* response,
                           Status* exec_status) {
  *response = ShardResponse();
  if (payload.size() < 1) return Malformed("response header");
  if (static_cast<uint8_t>(payload[0]) != kWireVersion) {
    return Status::Corruption("wire: unknown response version");
  }
  payload.remove_prefix(1);
  if (!GetStatus(&payload, exec_status)) return Malformed("status");
  uint64_t n = 0;
  if (!GetVarint64(&payload, &n)) return Malformed("result count");
  // >= 9 bytes each: id varint + 8-byte distance. Bounding by the
  // remaining payload (not the max frame size) keeps a corrupt count
  // in a small frame from provoking a giant reserve().
  if (n > payload.size() / 9) return Malformed("result count");
  response->results.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    core::SearchResult r;
    if (!GetVarint64(&payload, &r.id) || !GetDouble(&payload, &r.distance)) {
      return Malformed("result");
    }
    response->results.push_back(r);
  }
  if (!GetVarint64(&payload, &n)) return Malformed("id count");
  if (n > payload.size()) return Malformed("id count");  // >= 1 byte per id
  response->ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!GetVarint64(&payload, &id)) return Malformed("id");
    response->ids.push_back(id);
  }
  if (!GetTrajectories(&payload, &response->trajectories)) {
    return Malformed("trajectories");
  }
  if (!GetMetrics(&payload, &response->metrics)) return Malformed("metrics");
  if (!GetVarint64(&payload, &n)) return Malformed("fingerprint count");
  // >= 6 bytes each: two varints + 4-byte crc.
  if (n > payload.size() / 6) return Malformed("fingerprint count");
  response->fingerprints.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PartitionFingerprint fp;
    if (!GetVarint64(&payload, &fp.primary) ||
        !GetVarint64(&payload, &fp.rows)) {
      return Malformed("fingerprint");
    }
    if (payload.size() < 4) return Malformed("fingerprint crc");
    fp.crc = DecodeBigEndian32(payload.data());
    payload.remove_prefix(4);
    response->fingerprints.push_back(fp);
  }
  return Status::OK();
}

void EncodeTrajectoryList(const std::vector<core::Trajectory>& trajectories,
                          std::string* dst) {
  PutTrajectories(trajectories, dst);
}

Status DecodeTrajectoryList(Slice payload,
                            std::vector<core::Trajectory>* trajectories) {
  if (!GetTrajectories(&payload, trajectories)) {
    return Status::Corruption("wire: malformed trajectory list");
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace trass
