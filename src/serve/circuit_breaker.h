// CircuitBreaker: per-shard routing gate for the coordinator, mirroring
// the replica demotion/probe-reinstatement machinery one tier up.
//
// State machine:
//
//   closed ──(failure_threshold consecutive failures)──▶ open
//   open ──(cooldown elapsed; one caller claims the probe)──▶ half-open
//   half-open probe succeeds ──▶ closed        (reinstatement)
//   half-open probe fails    ──▶ open          (fresh cooldown)
//
// The point is deadline hygiene: a dead shard must cost the coordinator
// one breaker check — not a full per-shard deadline budget plus retries
// — per query. While open, requests are rejected instantly; callers
// with allow_partial skip the shard (counted in
// QueryMetrics::shards_skipped), callers without fail fast with the
// shard's last recorded error instead of discovering it the slow way.
//
// Thread-safe: hedges, retries, and stragglers from already-merged
// queries all record outcomes concurrently. A late success from a
// straggler closes the breaker — a genuine liveness signal, exactly
// like scan-piggybacked replica probes.

#ifndef TRASS_SERVE_CIRCUIT_BREAKER_H_
#define TRASS_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/status.h"

namespace trass {
namespace serve {

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that trip closed -> open.
    int failure_threshold = 3;
    /// Time the breaker stays open before offering a half-open probe.
    double cooldown_ms = 500.0;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  /// What a caller holding a request should do.
  enum class Decision {
    kProceed,  // closed: send normally
    kProbe,    // half-open: this caller claimed the single probe slot
    kReject,   // open (or probe already claimed): do not send
  };

  struct Counters {
    uint64_t trips = 0;           // closed/half-open -> open transitions
    uint64_t reinstatements = 0;  // open/half-open -> closed transitions
    uint64_t rejected = 0;        // requests turned away while open
    uint64_t probes = 0;          // half-open probe slots handed out
  };

  explicit CircuitBreaker(const Options& options) : options_(options) {}

  /// Routing decision for one request. kProbe claims the single
  /// half-open slot; the claimant MUST later call RecordSuccess or
  /// RecordFailure (the coordinator does this for every attempt
  /// outcome anyway).
  Decision Admit();

  /// A request to the shard completed successfully.
  void RecordSuccess();

  /// A request failed with a shard-attributed fault. `error`, when
  /// non-OK, is remembered as last_error() for fail-fast reporting.
  void RecordFailure(const Status& error = Status::OK());

  /// The probe claimant's attempt ended with no shard-attributed
  /// outcome — the coordinator cancelled it (fan-out teardown, hedge
  /// loser) before the shard answered. Returns the half-open probe
  /// slot without recording success or failure, so a later request
  /// can re-probe; without this a cancelled probe would leave the
  /// shard permanently unprobed and excluded. No-op outside half-open
  /// (a concurrent Record* already settled the slot).
  void ReleaseProbe();

  State state() const;
  Counters counters() const;
  /// Most recent shard-attributed failure (OK if none recorded).
  Status last_error() const;

  static const char* StateName(State s) {
    switch (s) {
      case State::kClosed:
        return "closed";
      case State::kOpen:
        return "open";
      case State::kHalfOpen:
        return "half-open";
    }
    return "?";
  }

 private:
  using Clock = std::chrono::steady_clock;

  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_outstanding_ = false;
  Clock::time_point open_until_{};
  Counters counters_;
  Status last_error_;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_CIRCUIT_BREAKER_H_
