#include "serve/fault_injection_transport.h"

#include <chrono>
#include <thread>

namespace trass {
namespace serve {

FaultInjectionTransport::FaultInjectionTransport(
    std::shared_ptr<ShardTransport> inner, const Options& options)
    : inner_(std::move(inner)),
      options_(options),
      rng_state_(options.seed ? options.seed : 1) {}

void FaultInjectionTransport::SetOptions(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t keep_rng = rng_state_;
  options_ = options;
  rng_state_ = keep_rng;
}

FaultInjectionTransport::Counters FaultInjectionTransport::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

double FaultInjectionTransport::Draw() {
  // xorshift64; caller holds mu_.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;
}

bool FaultInjectionTransport::CancellableSleep(
    double ms, const std::atomic<bool>* cancel) const {
  using Clock = std::chrono::steady_clock;
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (Clock::now() < until) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

Status FaultInjectionTransport::Execute(const ShardRequest& request,
                                        const std::atomic<bool>* cancel,
                                        ShardResponse* response) {
  double max_block_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    max_block_ms = options_.max_block_ms;
  }
  if (wedged_.load()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.wedged_calls;
    }
    // Alive-but-stuck: hold the attempt until the caller reclaims it.
    CancellableSleep(max_block_ms, cancel);
    return Status::IoError("injected fault: shard wedged");
  }

  enum class Kind { kNone, kError, kDrop, kDelay, kDuplicate };
  Kind kind = Kind::kNone;
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double r = Draw();
    double band = options_.error_probability;
    if (r < band) {
      kind = Kind::kError;
      ++counters_.errors;
    } else if (r < (band += options_.drop_probability)) {
      kind = Kind::kDrop;
      ++counters_.drops;
    } else if (r < (band += options_.delay_probability)) {
      kind = Kind::kDelay;
      ++counters_.delays;
      delay_ms = options_.delay_ms;
    } else if (r < (band += options_.duplicate_probability)) {
      kind = Kind::kDuplicate;
      ++counters_.duplicates;
    }
  }

  switch (kind) {
    case Kind::kError:
      return Status::IoError("injected fault: transport error");
    case Kind::kDrop: {
      // The request never arrives: nothing to show for the attempt's
      // whole budget. Respect cancellation so hedges reclaim us.
      const double block_ms = request.deadline_ms > 0.0
                                  ? request.deadline_ms + 50.0
                                  : max_block_ms;
      CancellableSleep(std::min(block_ms, max_block_ms), cancel);
      return Status::TimedOut("injected fault: request dropped");
    }
    case Kind::kDelay:
      if (CancellableSleep(delay_ms, cancel)) {
        return Status::Cancelled("attempt cancelled during injected delay");
      }
      break;
    case Kind::kDuplicate: {
      // Duplicated delivery: the shard executes the request twice; the
      // first answer is the one "the network" returns. Queries are
      // idempotent, so the merge must not notice.
      ShardResponse first;
      Status s = inner_->Execute(request, cancel, &first);
      {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.forwarded += 2;
      }
      ShardResponse second;
      inner_->Execute(request, cancel, &second);
      *response = std::move(first);
      return s;
    }
    case Kind::kNone:
      break;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.forwarded;
  }
  return inner_->Execute(request, cancel, response);
}

}  // namespace serve
}  // namespace trass
