// ShardTransport: the RPC boundary of the scatter-gather serving tier.
//
// A shard is one complete TrassStore (index + regions + replicas +
// admission control); the coordinator (serve/coordinator.h) owns N of
// them behind this interface and never assumes they share an address
// space. Two production-shaped implementations exist:
//
//   * DirectShardTransport  — in-process call into a TrassStore. This is
//     the production fast path for co-located shards and the vehicle for
//     the merge-equivalence tests (byte-identical results vs a single
//     store are only provable when the transport adds no lossy step).
//   * SocketShardTransport  — length-prefixed frames over a local
//     stream socket to a ShardServer, proving the multi-process-on-one-
//     host harness: the same request/response structs cross a real
//     process boundary through serve/wire.h.
//
// FaultInjectionTransport wraps either one and drives the chaos matrix
// (drop / delay / duplicate / error / wedge).
//
// Contract:
//   * Execute is synchronous and may be called concurrently from many
//     threads on one transport (the coordinator's hedges and retries
//     do exactly that).
//   * `cancel` is the attempt's kill switch, owned by the caller and
//     outliving the call. A transport must return promptly (with
//     Status::Cancelled or its own failure) once it becomes true —
//     this is how hedge losers and post-deadline stragglers are
//     reclaimed. Null means "not cancellable".
//   * `request.deadline_ms` is the shard-side budget the coordinator
//     carved from the caller's deadline; implementations thread it into
//     QueryOptions so a slow shard self-terminates instead of relying
//     on the coordinator to abandon it.
//   * Responses are self-contained: status, payload, and the shard's
//     QueryMetrics (folded by the coordinator so degradation on any
//     shard stays observable end to end).

#ifndef TRASS_SERVE_SHARD_TRANSPORT_H_
#define TRASS_SERVE_SHARD_TRANSPORT_H_

#include <atomic>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/measure.h"
#include "core/metrics.h"
#include "core/trajectory.h"
#include "geo/mbr.h"
#include "util/status.h"

namespace trass {
namespace serve {

enum class ShardOp : uint8_t {
  kThreshold = 1,    // threshold similarity search
  kTopK = 2,         // top-k similarity search
  kRange = 3,        // spatial within-window query
  kExport = 4,       // stream the shard's stored trajectories (join support)
  kPut = 5,          // ingest a batch of trajectories
  kPing = 6,         // liveness probe (breaker half-open checks, tests)
  kFingerprint = 7,  // per-primary-partition content digests (anti-entropy)
};

/// Content digest of the rows one shard holds for one primary
/// partition (serve/partitioner.h ring placement). Two replicas of the
/// same partition agree on (rows, crc) iff they store identical row
/// sets, so the coordinator's anti-entropy pass compares these instead
/// of shipping data (kExport narrowed to the partition repairs the
/// divergence it finds).
struct PartitionFingerprint {
  uint64_t primary = 0;  // partition = primary shard index
  uint64_t rows = 0;     // trajectories held for that partition
  uint32_t crc = 0;      // order-independent digest of (id, row) pairs
};

/// One request to one shard. Fields beyond `op`'s needs are ignored.
struct ShardRequest {
  ShardOp op = ShardOp::kPing;

  // Query payloads.
  std::vector<geo::Point> query;  // kThreshold / kTopK probe trajectory
  double eps = 0.0;               // kThreshold
  int k = 0;                      // kTopK
  core::Measure measure = core::Measure::kFrechet;
  geo::Mbr window;                // kRange

  /// kTopK follow-up waves: the coordinator's current merged k-th
  /// distance (a monotone upper bound on the global k-th). A finite
  /// bound lets the shard answer with every trajectory at distance
  /// <= bound instead of a blind local top-k — strictly more pruning,
  /// still a superset of the shard's contribution to the global answer.
  double bound = std::numeric_limits<double>::infinity();

  // Per-shard budget carved from the caller's QueryContext.
  double deadline_ms = 0.0;       // <= 0: undeadlined
  uint64_t max_candidates = 0;    // shard-side candidate budget share
  bool allow_partial = false;     // propagate verified-partial semantics

  std::vector<core::Trajectory> trajectories;  // kPut payload

  /// kFingerprint / filtered kExport: the coordinator's shard-topology
  /// size, so the shard computes primary placement with the exact
  /// partitioner the coordinator routes by. 0 on other ops.
  uint64_t num_shards = 0;
  /// kExport: when >= 0, export only rows whose primary partition is
  /// this value (anti-entropy repair reads one partition, not the
  /// whole shard). -1 exports everything (the join path).
  int64_t export_primary = -1;
};

/// One shard's answer. Exactly one payload vector is populated per op;
/// `metrics` carries the shard-side QueryMetrics for coordinator folding.
struct ShardResponse {
  std::vector<core::SearchResult> results;              // kThreshold/kTopK
  std::vector<uint64_t> ids;                            // kRange
  std::vector<core::Trajectory> trajectories;           // kExport
  std::vector<PartitionFingerprint> fingerprints;       // kFingerprint
  core::QueryMetrics metrics;
};

class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  /// Executes `request`, blocking until the shard answers, the attempt
  /// fails, or `*cancel` turns true. Thread-safe.
  virtual Status Execute(const ShardRequest& request,
                         const std::atomic<bool>* cancel,
                         ShardResponse* response) = 0;

  /// Human-readable endpoint description ("direct", "unix:/path").
  virtual std::string Describe() const = 0;
};

}  // namespace serve
}  // namespace trass

#endif  // TRASS_SERVE_SHARD_TRANSPORT_H_
