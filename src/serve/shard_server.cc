#include "serve/shard_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serve/direct_transport.h"
#include "serve/wire.h"
#include "util/coding.h"

namespace trass {
namespace serve {

namespace {

/// Blocking-with-poll read of exactly `len` bytes; false on EOF/error
/// or when `stopping` turns true.
bool ReadExact(int fd, size_t len, std::string* out,
               const std::atomic<bool>* stopping) {
  out->clear();
  out->reserve(len);
  char buf[4096];
  while (out->size() < len) {
    if (stopping->load(std::memory_order_relaxed)) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const size_t want = std::min(sizeof(buf), len - out->size());
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    out->append(buf, static_cast<size_t>(n));
  }
  return true;
}

bool WriteAll(int fd, const std::string& data,
              const std::atomic<bool>* stopping) {
  size_t sent = 0;
  while (sent < data.size()) {
    if (stopping->load(std::memory_order_relaxed)) return false;
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ShardServer::ShardServer(core::TrassStore* store, std::string socket_path)
    : store_(store), socket_path_(std::move(socket_path)) {}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  if (listen_fd_ >= 0) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const Status s =
        Status::IoError("bind/listen " + socket_path_ + ": " +
                        std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // Unblocks the accept poll; the loop sees `stopping_` and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& [fd, thread] : conn_threads_) threads.push_back(std::move(thread));
    conn_threads_.clear();
    for (std::thread& thread : finished_threads_) {
      threads.push_back(std::move(thread));
    }
    finished_threads_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
}

void ShardServer::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_threads_);
  }
  for (std::thread& t : finished) t.join();
}

void ShardServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    // Keyed by fd: safe because the entry is removed (under mu_) before
    // the fd is closed, so the kernel can't recycle the number into a
    // colliding key. The new thread can't reach its own teardown until
    // this insert releases mu_.
    conn_threads_.emplace(fd, std::thread([this, fd] { ServeConnection(fd); }));
  }
}

void ShardServer::ServeConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::string header;
    if (!ReadExact(fd, 4, &header, &stopping_)) break;
    const uint32_t payload_len = DecodeBigEndian32(header.data());
    if (payload_len > kMaxWireFrameBytes) break;
    std::string body;
    if (!ReadExact(fd, payload_len, &body, &stopping_)) break;

    ShardRequest request;
    ShardResponse response;
    Status exec_status = DecodeShardRequest(Slice(body), &request);
    if (exec_status.ok()) {
      // The server's kill switch doubles as the query's cancel flag so
      // Stop() unwedges in-flight queries instead of waiting them out.
      exec_status = ExecuteOnStore(store_, request, &stopping_, &response);
      requests_served_.fetch_add(1, std::memory_order_relaxed);
    }
    std::string payload, frame;
    EncodeShardResponse(response, exec_status, &payload);
    FrameMessage(payload, &frame);
    if (!WriteAll(fd, frame, &stopping_)) break;
  }
  {
    // Deregister before closing so Stop() never shutdown()s a file
    // descriptor number the kernel has already recycled, and hand this
    // thread's own handle to the reap list (a thread can't join
    // itself; the accept loop or Stop() joins it).
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    const auto it = conn_threads_.find(fd);
    if (it != conn_threads_.end()) {  // absent: Stop() already claimed it
      finished_threads_.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
  }
  ::close(fd);
}

}  // namespace serve
}  // namespace trass
