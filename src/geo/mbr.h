// Axis-aligned minimum bounding rectangle plus the rectangle distance
// kernels that the pruning lemmas are built from.

#ifndef TRASS_GEO_MBR_H_
#define TRASS_GEO_MBR_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "geo/point.h"

namespace trass {
namespace geo {

class Mbr {
 public:
  /// Default-constructed MBR is "empty": Extend() with the first point
  /// initializes it; IsEmpty() reports the state.
  Mbr()
      : min_x_(std::numeric_limits<double>::infinity()),
        min_y_(std::numeric_limits<double>::infinity()),
        max_x_(-std::numeric_limits<double>::infinity()),
        max_y_(-std::numeric_limits<double>::infinity()) {}

  Mbr(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  /// Bounding box of a point sequence.
  static Mbr Of(const std::vector<Point>& points) {
    Mbr m;
    for (const Point& p : points) m.Extend(p);
    return m;
  }

  bool IsEmpty() const { return min_x_ > max_x_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }
  double width() const { return max_x_ - min_x_; }
  double height() const { return max_y_ - min_y_; }
  Point center() const {
    return Point{(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
  }
  Point lower_left() const { return Point{min_x_, min_y_}; }
  Point upper_right() const { return Point{max_x_, max_y_}; }

  void Extend(const Point& p) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }

  void Extend(const Mbr& other) {
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  /// The paper's Ext(MBR, eps): grows the box by eps on every side.
  Mbr Expanded(double eps) const {
    return Mbr(min_x_ - eps, min_y_ - eps, max_x_ + eps, max_y_ + eps);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
  }

  bool Contains(const Mbr& other) const {
    return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
           other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
  }

  bool Intersects(const Mbr& other) const {
    return !(other.min_x_ > max_x_ || other.max_x_ < min_x_ ||
             other.min_y_ > max_y_ || other.max_y_ < min_y_);
  }

  /// Distance from p to this rectangle (0 when p is inside).
  double Distance(const Point& p) const {
    const double dx = std::max({min_x_ - p.x, 0.0, p.x - max_x_});
    const double dy = std::max({min_y_ - p.y, 0.0, p.y - max_y_});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Minimum distance between two rectangles (0 when they intersect).
  double Distance(const Mbr& other) const {
    const double dx =
        std::max({other.min_x_ - max_x_, 0.0, min_x_ - other.max_x_});
    const double dy =
        std::max({other.min_y_ - max_y_, 0.0, min_y_ - other.max_y_});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Minimum distance from segment [a, b] to this rectangle (0 on overlap).
  double SegmentDistance(const Point& a, const Point& b) const;

  /// The four corners in counter-clockwise order starting at lower-left.
  void Corners(Point out[4]) const {
    out[0] = Point{min_x_, min_y_};
    out[1] = Point{max_x_, min_y_};
    out[2] = Point{max_x_, max_y_};
    out[3] = Point{min_x_, max_y_};
  }

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

 private:
  double min_x_, min_y_, max_x_, max_y_;
};

/// Lemma 9/11 edge bound against a single rectangle: the max over
/// `query_mbr`'s edges of the edge-to-`region` minimum distance. Lower
/// bounds the similarity distance between the query and any trajectory
/// fully contained in `region` (each query-MBR edge holds at least one
/// query point). Shared by core pruning and the memory-resident filter
/// tier, which must not depend on core.
inline double MinEdgeToRegionDistance(const Mbr& query_mbr,
                                      const Mbr& region) {
  Point c[4];
  query_mbr.Corners(c);
  double worst_edge = 0.0;
  for (int e = 0; e < 4; ++e) {
    worst_edge =
        std::max(worst_edge, region.SegmentDistance(c[e], c[(e + 1) % 4]));
  }
  return worst_edge;
}

}  // namespace geo
}  // namespace trass

#endif  // TRASS_GEO_MBR_H_
