// 2-D point and the basic distance kernels every other geometry routine
// builds on. Coordinates are in the normalized [0,1]^2 index space unless a
// caller says otherwise (the paper normalizes the whole earth to [0,1]^2).

#ifndef TRASS_GEO_POINT_H_
#define TRASS_GEO_POINT_H_

#include <cmath>

namespace trass {
namespace geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// Squared distance from point p to segment [a, b]. Degenerate segments
/// (a == b) fall back to point distance.
inline double PointSegmentDistanceSquared(const Point& p, const Point& a,
                                          const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  if (len_sq <= 0.0) return DistanceSquared(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  const Point proj{a.x + t * abx, a.y + t * aby};
  return DistanceSquared(p, proj);
}

inline double PointSegmentDistance(const Point& p, const Point& a,
                                   const Point& b) {
  return std::sqrt(PointSegmentDistanceSquared(p, a, b));
}

/// Signed twice-area of triangle (a, b, c); >0 when c is left of a->b.
inline double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// True when segments [a1,a2] and [b1,b2] intersect (including touching).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Minimum distance between segments [a1,a2] and [b1,b2] (0 if they touch).
double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

}  // namespace geo
}  // namespace trass

#endif  // TRASS_GEO_POINT_H_
