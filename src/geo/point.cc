#include "geo/point.h"

#include <algorithm>

namespace trass {
namespace geo {

namespace {

// Whether q lies on segment [a, b] given that a, b, q are collinear.
bool OnSegment(const Point& a, const Point& b, const Point& q) {
  return std::min(a.x, b.x) <= q.x && q.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= q.y && q.y <= std::max(a.y, b.y);
}

int Sign(double v) { return (v > 0.0) - (v < 0.0); }

}  // namespace

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  const int d1 = Sign(Cross(b1, b2, a1));
  const int d2 = Sign(Cross(b1, b2, a2));
  const int d3 = Sign(Cross(a1, a2, b1));
  const int d4 = Sign(Cross(a1, a2, b2));
  if (d1 != d2 && d3 != d4) return true;
  if (d1 == 0 && OnSegment(b1, b2, a1)) return true;
  if (d2 == 0 && OnSegment(b1, b2, a2)) return true;
  if (d3 == 0 && OnSegment(a1, a2, b1)) return true;
  if (d4 == 0 && OnSegment(a1, a2, b2)) return true;
  return false;
}

double SegmentSegmentDistance(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
  // Disjoint segments achieve their minimum at an endpoint of one of them.
  double d = PointSegmentDistanceSquared(a1, b1, b2);
  d = std::min(d, PointSegmentDistanceSquared(a2, b1, b2));
  d = std::min(d, PointSegmentDistanceSquared(b1, a1, a2));
  d = std::min(d, PointSegmentDistanceSquared(b2, a1, a2));
  return std::sqrt(d);
}

}  // namespace geo
}  // namespace trass
