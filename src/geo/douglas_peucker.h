// Douglas-Peucker polyline simplification. Returns the *indices* of the
// representative points (the paper stores the indices in the `dp-points`
// column so the raw trajectory can be reused). Every dropped point is
// within `tolerance` of the chord between its surrounding representative
// points — the invariant the local-filtering lemmas rely on.

#ifndef TRASS_GEO_DOUGLAS_PEUCKER_H_
#define TRASS_GEO_DOUGLAS_PEUCKER_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace trass {
namespace geo {

/// Indices (ascending, always containing 0 and n-1 for n >= 2) of the
/// representative points of `points` under distance tolerance `tolerance`.
/// An empty input yields an empty result; a single point yields {0}.
std::vector<uint32_t> DouglasPeucker(const std::vector<Point>& points,
                                     double tolerance);

}  // namespace geo
}  // namespace trass

#endif  // TRASS_GEO_DOUGLAS_PEUCKER_H_
