#include "geo/mbr.h"

namespace trass {
namespace geo {

double Mbr::SegmentDistance(const Point& a, const Point& b) const {
  if (Contains(a) || Contains(b)) return 0.0;
  Point c[4];
  Corners(c);
  // The segment may cross the rectangle without either endpoint inside.
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    const Point& e1 = c[i];
    const Point& e2 = c[(i + 1) % 4];
    if (SegmentsIntersect(a, b, e1, e2)) return 0.0;
    best = std::min(best, SegmentSegmentDistance(a, b, e1, e2));
  }
  return best;
}

}  // namespace geo
}  // namespace trass
