// Unit conversions for the earth-normalized index space.
//
// The index space maps the whole earth to [0,1]^2 (x = (lon+180)/360,
// y = (lat+90)/180). The paper quotes thresholds (eps in 0.001..0.02) and
// the Douglas-Peucker tolerance (0.01) in *degrees* — on earth-normalized
// coordinates those values would span hundreds of kilometres and make
// every trajectory pair "similar". These constants convert degree- and
// kilometre-denominated quantities into normalized units.

#ifndef TRASS_GEO_UNITS_H_
#define TRASS_GEO_UNITS_H_

namespace trass {
namespace geo {

/// One degree of longitude in normalized x units.
constexpr double kDegree = 1.0 / 360.0;

/// Roughly one kilometre in normalized units (equator-scale longitude).
constexpr double kKilometre = 1.0 / 40000.0;

}  // namespace geo
}  // namespace trass

#endif  // TRASS_GEO_UNITS_H_
