// Oriented (non-axis-aligned) bounding box, used for the Douglas-Peucker
// features: the paper covers the raw points between two successive
// representative points with a bounding box that "is not necessarily
// parallel to the coordinate axis" — we orient it along the chord between
// the two representative points, which hugs the sub-trajectory tightly.

#ifndef TRASS_GEO_ORIENTED_BOX_H_
#define TRASS_GEO_ORIENTED_BOX_H_

#include <cstddef>
#include <vector>

#include "geo/mbr.h"
#include "geo/point.h"

namespace trass {
namespace geo {

class OrientedBox {
 public:
  /// Degenerate single-point box.
  OrientedBox() : corners_{} {}

  /// Builds a box directly from four corners in counter-clockwise order.
  explicit OrientedBox(const Point corners[4]) {
    for (int i = 0; i < 4; ++i) corners_[i] = corners[i];
  }

  /// Smallest box oriented along the direction axis_from -> axis_to that
  /// covers points[first..last] (inclusive). Falls back to axis-aligned
  /// when the axis is degenerate.
  static OrientedBox Cover(const std::vector<Point>& points, size_t first,
                           size_t last, const Point& axis_from,
                           const Point& axis_to);

  const Point& corner(int i) const { return corners_[i]; }

  /// True when p lies inside or on the boundary (convex containment).
  bool Contains(const Point& p) const;

  /// Distance from p to the box (0 when inside).
  double Distance(const Point& p) const;

  /// Minimum distance from segment [a, b] to the box (0 on overlap).
  double SegmentDistance(const Point& a, const Point& b) const;

  /// Minimum distance between two oriented boxes (0 on overlap).
  double Distance(const OrientedBox& other) const;

  /// Axis-aligned bounding box of this oriented box.
  Mbr Bounds() const {
    Mbr m;
    for (const Point& c : corners_) m.Extend(c);
    return m;
  }

 private:
  Point corners_[4];
};

}  // namespace geo
}  // namespace trass

#endif  // TRASS_GEO_ORIENTED_BOX_H_
