#include "geo/douglas_peucker.h"

#include <algorithm>
#include <utility>

namespace trass {
namespace geo {

namespace {

// Iterative (explicit stack) divide-and-conquer to stay safe on long,
// pathological trajectories where recursion depth could approach n.
void Simplify(const std::vector<Point>& points, double tolerance,
              std::vector<uint32_t>* keep) {
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  stack.emplace_back(0, static_cast<uint32_t>(points.size() - 1));
  const double tol_sq = tolerance * tolerance;
  while (!stack.empty()) {
    auto [first, last] = stack.back();
    stack.pop_back();
    if (last <= first + 1) continue;
    double worst = -1.0;
    uint32_t worst_idx = first;
    for (uint32_t i = first + 1; i < last; ++i) {
      const double d =
          PointSegmentDistanceSquared(points[i], points[first], points[last]);
      if (d > worst) {
        worst = d;
        worst_idx = i;
      }
    }
    if (worst > tol_sq) {
      keep->push_back(worst_idx);
      stack.emplace_back(first, worst_idx);
      stack.emplace_back(worst_idx, last);
    }
  }
}

}  // namespace

std::vector<uint32_t> DouglasPeucker(const std::vector<Point>& points,
                                     double tolerance) {
  std::vector<uint32_t> keep;
  if (points.empty()) return keep;
  keep.push_back(0);
  if (points.size() == 1) return keep;
  keep.push_back(static_cast<uint32_t>(points.size() - 1));
  Simplify(points, tolerance, &keep);
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  return keep;
}

}  // namespace geo
}  // namespace trass
