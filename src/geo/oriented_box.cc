#include "geo/oriented_box.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trass {
namespace geo {

OrientedBox OrientedBox::Cover(const std::vector<Point>& points, size_t first,
                               size_t last, const Point& axis_from,
                               const Point& axis_to) {
  double ux = axis_to.x - axis_from.x;
  double uy = axis_to.y - axis_from.y;
  const double len = std::sqrt(ux * ux + uy * uy);
  if (len <= 0.0) {
    ux = 1.0;
    uy = 0.0;
  } else {
    ux /= len;
    uy /= len;
  }
  // Project every covered point onto the (u, v) frame, v = u rotated 90deg.
  double min_u = std::numeric_limits<double>::infinity();
  double max_u = -min_u;
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -min_v;
  for (size_t i = first; i <= last && i < points.size(); ++i) {
    const Point& p = points[i];
    const double pu = p.x * ux + p.y * uy;
    const double pv = -p.x * uy + p.y * ux;
    min_u = std::min(min_u, pu);
    max_u = std::max(max_u, pu);
    min_v = std::min(min_v, pv);
    max_v = std::max(max_v, pv);
  }
  auto unproject = [&](double u, double v) {
    return Point{u * ux - v * uy, u * uy + v * ux};
  };
  OrientedBox box;
  box.corners_[0] = unproject(min_u, min_v);
  box.corners_[1] = unproject(max_u, min_v);
  box.corners_[2] = unproject(max_u, max_v);
  box.corners_[3] = unproject(min_u, max_v);
  return box;
}

bool OrientedBox::Contains(const Point& p) const {
  // Convex, counter-clockwise corners: inside iff never strictly right of
  // any edge. A small tolerance absorbs floating-point projection noise.
  // Degenerate (zero-area) boxes make every cross product vanish, so the
  // axis-aligned bounds check below is what actually rejects far points.
  constexpr double kEps = 1e-12;
  Mbr bounds;
  for (const Point& c : corners_) bounds.Extend(c);
  if (!bounds.Expanded(kEps).Contains(p)) return false;
  for (int i = 0; i < 4; ++i) {
    if (Cross(corners_[i], corners_[(i + 1) % 4], p) < -kEps) return false;
  }
  return true;
}

double OrientedBox::Distance(const Point& p) const {
  if (Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    best = std::min(
        best, PointSegmentDistanceSquared(p, corners_[i], corners_[(i + 1) % 4]));
  }
  return std::sqrt(best);
}

double OrientedBox::SegmentDistance(const Point& a, const Point& b) const {
  if (Contains(a) || Contains(b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    const Point& e1 = corners_[i];
    const Point& e2 = corners_[(i + 1) % 4];
    if (SegmentsIntersect(a, b, e1, e2)) return 0.0;
    best = std::min(best, SegmentSegmentDistance(a, b, e1, e2));
  }
  return best;
}

double OrientedBox::Distance(const OrientedBox& other) const {
  // Overlap check via containment of any corner either way, then edge-pair
  // distances. Convexity makes corner/edge tests sufficient.
  for (int i = 0; i < 4; ++i) {
    if (Contains(other.corners_[i]) || other.Contains(corners_[i])) {
      return 0.0;
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 4; ++i) {
    const Point& a1 = corners_[i];
    const Point& a2 = corners_[(i + 1) % 4];
    for (int j = 0; j < 4; ++j) {
      const Point& b1 = other.corners_[j];
      const Point& b2 = other.corners_[(j + 1) % 4];
      if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
      best = std::min(best, SegmentSegmentDistance(a1, a2, b1, b2));
    }
  }
  return best;
}

}  // namespace geo
}  // namespace trass
