// Online ingest pipeline: bounded multi-producer queue -> parallel
// XZ*/DP-feature encoding -> group-commit batches -> watermark publish.
//
// Lifecycle of one trajectory:
//   1. Submit() pushes it into a bounded queue; acceptance assigns a
//      1-based ticket (the ingest sequence number). A full queue makes
//      Submit wait up to the caller's budget and then shed with
//      Status::Busy — backpressure is explicit, never an unbounded block.
//   2. The commit thread gathers a batch (up to batch_max_rows, lingering
//      batch_linger_ms for concurrent producers to coalesce), encodes the
//      trajectories on a small worker pool (XZ* index + DP features are
//      CPU-heavy and stay off the commit path), and hands the encoded
//      rows to the commit callback — which groups them into per-region
//      WriteBatches, applies them to all replicas, and publishes the
//      value-directory/statistics updates.
//   3. Only after the commit callback returns does the watermark advance
//      to the batch's last ticket. A query that snapshots state at
//      watermark W therefore never observes a half-applied trajectory:
//      row, features (inside the row value), and value-directory entry
//      became visible before W did.
//
// Failure semantics: the watermark tracks *resolved* tickets, not
// successful ones — a row that fails encoding or a batch whose commit
// fails still advances the watermark past its tickets (the failure is
// recorded in stats()/last_error()). Otherwise one poisoned row would
// stall visibility of everything behind it forever. Crash consistency is
// the storage layer's job: a batch is one WAL record per region, so a
// crash mid-batch either replays the whole region batch or none of it,
// and TrassStore::RebuildIngestState re-derives directory/statistics from
// whatever rows survived.

#ifndef TRASS_INGEST_INGEST_PIPELINE_H_
#define TRASS_INGEST_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/trajectory.h"
#include "geo/mbr.h"
#include "util/bounded_queue.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace trass {
namespace ingest {

/// One trajectory after XZ* + DP-feature encoding: ready-to-write row
/// bytes plus the metadata the store publishes at watermark advance.
struct EncodedRow {
  uint64_t seq = 0;        // ingest ticket (assigned at queue accept)
  uint64_t tid = 0;        // trajectory id
  int shard = 0;           // region routing byte
  int64_t index_value = 0; // XZ* index value (value-directory entry)
  int resolution = 0;      // XZ* quadrant-sequence length (statistics)
  int position_code = 0;   // XZ* position code (statistics)
  std::string key;         // full row key (shard byte included)
  std::string value;       // encoded points + DP features
  geo::Mbr mbr;            // exact trajectory MBR (filter-tier summary)
  /// Shingled-minhash signature for the filter tier's per-row records;
  /// empty when the tier (or its fingerprint half) is disabled.
  std::vector<uint32_t> fingerprint;
};

struct IngestOptions {
  /// Queue slots; producers shed with Busy once it is full.
  size_t queue_capacity = 1024;
  /// Group-commit batch bound (rows per batch).
  size_t batch_max_rows = 256;
  /// How long the batcher lingers for more rows once it has one.
  double batch_linger_ms = 2.0;
  /// Encoding workers (0 = encode inline on the commit thread).
  size_t encode_threads = 2;
};

/// Point-in-time ingest counters (monotonic since pipeline start).
struct IngestStatsSnapshot {
  uint64_t submitted = 0;         // Submit calls
  uint64_t accepted = 0;          // entered the queue (== last ticket)
  uint64_t shed = 0;              // rejected with Busy (queue full)
  uint64_t batches_committed = 0; // successful group commits
  uint64_t rows_committed = 0;    // rows inside those commits
  uint64_t encode_failures = 0;   // rows dropped by the encode callback
  uint64_t commit_failures = 0;   // rows dropped by failed commits
  uint64_t max_batch_rows = 0;    // largest committed batch
  uint64_t queue_depth = 0;       // instantaneous
  uint64_t queue_high_water = 0;  // deepest the queue has ever been
  uint64_t watermark = 0;         // last resolved ticket
  uint64_t watermark_lag = 0;     // accepted - watermark (rows in flight)
};

class IngestPipeline {
 public:
  /// Encodes one trajectory into a row. Called concurrently from the
  /// encode pool; must be thread-safe. A non-OK status drops the row
  /// (counted as encode_failure) without failing the batch.
  using EncodeFn = std::function<Status(const core::Trajectory&, EncodedRow*)>;

  /// Commits one encoded batch (rows in ticket order) and publishes its
  /// side effects (value directory, statistics). Called only from the
  /// single commit thread; may consume/move from *rows. The watermark
  /// advances after this returns.
  using CommitFn = std::function<Status(std::vector<EncodedRow>* rows)>;

  IngestPipeline(const IngestOptions& options, EncodeFn encode,
                 CommitFn commit);
  ~IngestPipeline();  // Shutdown()

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Thread-safe. Queues `traj`, waiting up to `max_wait_ms` when the
  /// queue is full (0 = shed immediately). On acceptance *ticket (if
  /// non-null) receives the sequence number to pass to WaitForWatermark.
  /// Returns Busy on shed, Cancelled after Shutdown.
  Status Submit(core::Trajectory traj, uint64_t max_wait_ms = 0,
                uint64_t* ticket = nullptr);

  /// Last resolved ticket: every trajectory with ticket <= watermark()
  /// is either fully visible to queries or recorded as a failure.
  uint64_t watermark() const {
    return watermark_.load(std::memory_order_acquire);
  }

  /// Blocks until watermark() >= ticket or `timeout_ms` elapses
  /// (TimedOut). A ticket of 0 returns immediately.
  Status WaitForWatermark(uint64_t ticket, uint64_t timeout_ms) const;

  /// Waits until everything accepted so far has resolved.
  Status Drain(uint64_t timeout_ms) const;

  /// Closes the queue (further Submits return Cancelled), drains every
  /// queued trajectory through the commit path, and joins the workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

  IngestStatsSnapshot stats() const;

  /// Most recent encode/commit failure (OK when none). Sticky until the
  /// next failure overwrites it.
  Status last_error() const;

  /// Arms fail-fast draining: every batch popped after this call is
  /// resolved as a commit failure with `sticky` — the watermark still
  /// advances past its tickets — without being encoded or committed.
  /// TrassStore arms this before tearing the pipeline down while the
  /// store below is wedged read-only, so the shutdown drain resolves
  /// the backlog immediately instead of pushing doomed (and possibly
  /// stall-throttled) writes at a broken disk. Pass OK to disarm.
  void FailPending(const Status& sticky);

  /// Test hook: while held, the commit thread stalls after gathering a
  /// batch and before encoding/committing it, so tests can build a
  /// backlog (backpressure) or freeze the watermark (visibility).
  void SetCommitHoldForTesting(bool hold);

 private:
  void CommitLoop();
  void RecordError(const Status& s);

  const IngestOptions options_;
  const EncodeFn encode_;
  const CommitFn commit_;

  BoundedQueue<core::Trajectory> queue_;
  std::unique_ptr<ThreadPool> encode_pool_;  // null when encode_threads == 0

  std::atomic<uint64_t> watermark_{0};
  mutable std::mutex watermark_mu_;  // guards the cv sleep, not the value
  mutable std::condition_variable watermark_cv_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> batches_committed_{0};
  std::atomic<uint64_t> rows_committed_{0};
  std::atomic<uint64_t> encode_failures_{0};
  std::atomic<uint64_t> commit_failures_{0};
  std::atomic<uint64_t> max_batch_rows_{0};

  mutable std::mutex error_mu_;
  Status last_error_;
  Status fail_pending_;  // non-OK: resolve batches without committing

  std::mutex hold_mu_;
  std::condition_variable hold_cv_;
  bool hold_ = false;

  std::atomic<bool> shutdown_{false};
  std::thread commit_thread_;  // last member: joined before the rest dies
};

}  // namespace ingest
}  // namespace trass

#endif  // TRASS_INGEST_INGEST_PIPELINE_H_
