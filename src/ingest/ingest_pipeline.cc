#include "ingest/ingest_pipeline.h"

#include <algorithm>
#include <chrono>

namespace trass {
namespace ingest {

IngestPipeline::IngestPipeline(const IngestOptions& options, EncodeFn encode,
                               CommitFn commit)
    : options_(options),
      encode_(std::move(encode)),
      commit_(std::move(commit)),
      queue_(options.queue_capacity) {
  if (options_.encode_threads > 0) {
    encode_pool_ = std::make_unique<ThreadPool>(options_.encode_threads);
  }
  commit_thread_ = std::thread([this] { CommitLoop(); });
}

IngestPipeline::~IngestPipeline() { Shutdown(); }

Status IngestPipeline::Submit(core::Trajectory traj, uint64_t max_wait_ms,
                              uint64_t* ticket) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Status s = queue_.Push(std::move(traj), max_wait_ms, ticket);
  if (s.IsBusy()) shed_.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status IngestPipeline::WaitForWatermark(uint64_t ticket,
                                        uint64_t timeout_ms) const {
  if (watermark_.load(std::memory_order_acquire) >= ticket) {
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(watermark_mu_);
  const bool reached = watermark_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        return watermark_.load(std::memory_order_acquire) >= ticket;
      });
  return reached ? Status::OK()
                 : Status::TimedOut("watermark did not reach ticket " +
                                    std::to_string(ticket));
}

Status IngestPipeline::Drain(uint64_t timeout_ms) const {
  return WaitForWatermark(queue_.accepted(), timeout_ms);
}

void IngestPipeline::Shutdown() {
  if (shutdown_.exchange(true)) {
    if (commit_thread_.joinable()) commit_thread_.join();
    return;
  }
  queue_.Close();
  // Release a test hold so the drain cannot deadlock.
  SetCommitHoldForTesting(false);
  if (commit_thread_.joinable()) commit_thread_.join();
  if (encode_pool_ != nullptr) encode_pool_->Shutdown();
}

void IngestPipeline::RecordError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  last_error_ = s;
}

Status IngestPipeline::last_error() const {
  std::lock_guard<std::mutex> lock(error_mu_);
  return last_error_;
}

void IngestPipeline::FailPending(const Status& sticky) {
  std::lock_guard<std::mutex> lock(error_mu_);
  fail_pending_ = sticky;
}

void IngestPipeline::SetCommitHoldForTesting(bool hold) {
  std::lock_guard<std::mutex> lock(hold_mu_);
  hold_ = hold;
  hold_cv_.notify_all();
}

IngestStatsSnapshot IngestPipeline::stats() const {
  IngestStatsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = queue_.accepted();
  s.shed = shed_.load(std::memory_order_relaxed);
  s.batches_committed = batches_committed_.load(std::memory_order_relaxed);
  s.rows_committed = rows_committed_.load(std::memory_order_relaxed);
  s.encode_failures = encode_failures_.load(std::memory_order_relaxed);
  s.commit_failures = commit_failures_.load(std::memory_order_relaxed);
  s.max_batch_rows = max_batch_rows_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.queue_high_water = queue_.high_water();
  s.watermark = watermark_.load(std::memory_order_acquire);
  s.watermark_lag = s.accepted >= s.watermark ? s.accepted - s.watermark : 0;
  return s;
}

void IngestPipeline::CommitLoop() {
  uint64_t next_seq = 0;  // last ticket resolved so far
  std::vector<core::Trajectory> batch;
  for (;;) {
    batch.clear();
    const size_t n =
        queue_.PopBatch(&batch, options_.batch_max_rows,
                        options_.batch_linger_ms);
    if (n == 0) break;  // closed and drained

    // Test hook: park with the batch gathered but uncommitted, so the
    // queue backs up behind it and the watermark freezes below it.
    {
      std::unique_lock<std::mutex> lock(hold_mu_);
      hold_cv_.wait(lock, [&] { return !hold_; });
    }

    // Tickets are assigned at queue accept in FIFO order, so this batch
    // covers exactly (next_seq, next_seq + n].
    const uint64_t base = next_seq + 1;
    next_seq += n;

    // Fail-fast drain (FailPending armed): resolve the batch as failed
    // without paying encode or commit — the watermark must still advance
    // or the shutdown drain would hang behind the wedged store.
    Status fail;
    {
      std::lock_guard<std::mutex> lock(error_mu_);
      fail = fail_pending_;
    }
    if (!fail.ok()) {
      commit_failures_.fetch_add(n, std::memory_order_relaxed);
      RecordError(fail);
      {
        std::lock_guard<std::mutex> lock(watermark_mu_);
        watermark_.store(next_seq, std::memory_order_release);
      }
      watermark_cv_.notify_all();
      continue;
    }

    // Encode off the commit path: XZ* indexing + DP features dominate
    // per-row cost, so they run on the worker pool while commits of the
    // previous batch's WAL writes were overlapping queue fill.
    std::vector<EncodedRow> rows(n);
    std::vector<Status> row_status(n);
    auto encode_one = [&](size_t i) {
      row_status[i] = encode_(batch[i], &rows[i]);
      rows[i].seq = base + i;
    };
    if (encode_pool_ != nullptr && n > 1) {
      encode_pool_->ParallelFor(n, encode_one);
    } else {
      for (size_t i = 0; i < n; ++i) encode_one(i);
    }

    std::vector<EncodedRow> ok_rows;
    ok_rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (row_status[i].ok()) {
        ok_rows.push_back(std::move(rows[i]));
      } else {
        encode_failures_.fetch_add(1, std::memory_order_relaxed);
        RecordError(row_status[i]);
      }
    }

    if (!ok_rows.empty()) {
      const size_t committed = ok_rows.size();
      Status s = commit_(&ok_rows);
      if (s.ok()) {
        batches_committed_.fetch_add(1, std::memory_order_relaxed);
        rows_committed_.fetch_add(committed, std::memory_order_relaxed);
        uint64_t prev = max_batch_rows_.load(std::memory_order_relaxed);
        while (committed > prev &&
               !max_batch_rows_.compare_exchange_weak(
                   prev, committed, std::memory_order_relaxed)) {
        }
      } else {
        commit_failures_.fetch_add(committed, std::memory_order_relaxed);
        RecordError(s);
      }
    }

    // Publish: everything the commit callback made visible happened
    // before this store, so a reader that observes watermark >= seq also
    // observes the row, its features, and its directory entry.
    {
      std::lock_guard<std::mutex> lock(watermark_mu_);
      watermark_.store(next_seq, std::memory_order_release);
    }
    watermark_cv_.notify_all();
  }
}

}  // namespace ingest
}  // namespace trass
